//! Instrumented end-to-end runs: build the distributed graph, run the
//! algorithm on a simulated machine, collect timing + engine + runtime
//! counters, and validate against the sequential oracle.

use std::time::Instant;

use dgp_algorithms::{handwritten, seq, sssp::Sssp, SsspStrategy};
use dgp_am::{EpochProfile, Machine, MachineConfig};
use dgp_core::engine::EngineConfig;
use dgp_graph::properties::EdgeMap;
use dgp_graph::{DistGraph, Distribution, EdgeList, VertexId};

/// One measured SSSP (or BFS-like) run.
#[derive(Debug, Clone)]
pub struct SsspMeasurement {
    /// Row label.
    pub label: String,
    /// Wall-clock milliseconds, machine spawn included.
    pub millis: f64,
    /// Successful relaxations (condition fired).
    pub relaxations: u64,
    /// Relaxation attempts (edges examined).
    pub attempts: u64,
    /// Logical messages sent.
    pub messages: u64,
    /// Coalesced envelopes delivered.
    pub envelopes: u64,
    /// Machine-wide epochs run. The raw `StatsSnapshot::epochs` counter is
    /// bumped by every rank entering the (collective) epoch, so it is
    /// divided by the rank count here.
    pub epochs: u64,
    /// Whether the result matched the oracle.
    pub correct: bool,
    /// Per-epoch counter deltas recorded by the runtime (`dgp-am::obs`):
    /// one entry per epoch, in order. Empty for runs without a machine
    /// (sequential baselines).
    pub profiles: Vec<EpochProfile>,
}

fn dists_match(got: &[f64], want: &[f64]) -> bool {
    got.len() == want.len()
        && got
            .iter()
            .zip(want)
            .all(|(a, b)| (a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite()))
}

/// Run pattern-engine SSSP and measure.
#[allow(clippy::too_many_arguments)]
pub fn sssp_pattern(
    label: &str,
    el: &EdgeList,
    machine: MachineConfig,
    engine_cfg: EngineConfig,
    source: VertexId,
    strategy: SsspStrategy,
    oracle: &[f64],
) -> SsspMeasurement {
    let graph = DistGraph::build(
        el,
        Distribution::block(el.num_vertices(), machine.ranks),
        false,
    );
    let weights = EdgeMap::from_weights(&graph, el);
    let ranks = machine.ranks as u64;
    let t0 = Instant::now();
    let mut out = Machine::run(machine, move |ctx| {
        let s = Sssp::install(ctx, &graph, &weights, engine_cfg);
        s.run(ctx, source, strategy);
        let es = s.engine.stats();
        let relaxations = ctx.sum_ranks(es.conditions_true);
        let attempts = ctx.sum_ranks(es.items_generated);
        (ctx.rank() == 0).then(|| {
            (
                s.dist.snapshot(),
                relaxations,
                attempts,
                ctx.stats(),
                ctx.epoch_profiles(),
            )
        })
    });
    let millis = t0.elapsed().as_secs_f64() * 1e3;
    let (dist, relaxations, attempts, am, profiles) = out[0].take().unwrap();
    SsspMeasurement {
        label: label.to_string(),
        millis,
        relaxations,
        attempts,
        messages: am.messages_sent,
        envelopes: am.envelopes_sent,
        epochs: am.epochs / ranks,
        correct: dists_match(&dist, oracle),
        profiles,
    }
}

/// Run hand-written AM SSSP (plain or reduced) and measure.
pub fn sssp_handwritten(
    label: &str,
    el: &EdgeList,
    machine: MachineConfig,
    source: VertexId,
    reduction_slots: Option<usize>,
    oracle: &[f64],
) -> SsspMeasurement {
    let graph = DistGraph::build(
        el,
        Distribution::block(el.num_vertices(), machine.ranks),
        false,
    );
    let weights = EdgeMap::from_weights(&graph, el);
    let ranks = machine.ranks as u64;
    let t0 = Instant::now();
    let mut out = Machine::run(machine, move |ctx| {
        let d = match reduction_slots {
            None => handwritten::sssp(ctx, &graph, &weights, source),
            Some(slots) => handwritten::sssp_reduced(ctx, &graph, &weights, source, slots),
        };
        (ctx.rank() == 0).then(|| (d.snapshot(), ctx.stats(), ctx.epoch_profiles()))
    });
    let millis = t0.elapsed().as_secs_f64() * 1e3;
    let (dist, am, profiles) = out[0].take().unwrap();
    SsspMeasurement {
        label: label.to_string(),
        millis,
        relaxations: 0,
        attempts: 0,
        messages: am.messages_sent,
        envelopes: am.envelopes_sent,
        epochs: am.epochs / ranks,
        correct: dists_match(&dist, oracle),
        profiles,
    }
}

/// Sequential Dijkstra measured the same way (the single-node baseline).
pub fn sssp_sequential(el: &EdgeList, source: VertexId) -> SsspMeasurement {
    let t0 = Instant::now();
    let dist = seq::dijkstra(el, source);
    let millis = t0.elapsed().as_secs_f64() * 1e3;
    SsspMeasurement {
        label: "sequential Dijkstra".into(),
        millis,
        relaxations: 0,
        attempts: 0,
        messages: 0,
        envelopes: 0,
        epochs: 0,
        correct: !dist.is_empty(),
        profiles: Vec::new(),
    }
}

/// One measured CC run.
#[derive(Debug, Clone)]
pub struct CcMeasurement {
    /// Row label.
    pub label: String,
    /// Wall-clock milliseconds, machine spawn included.
    pub millis: f64,
    /// Logical messages sent.
    pub messages: u64,
    /// Number of distinct labels found.
    pub components: usize,
    /// Whether the labels matched union-find.
    pub correct: bool,
}

/// Run pattern-engine parallel-search CC and measure.
pub fn cc_pattern(label: &str, el: &EdgeList, machine: MachineConfig) -> CcMeasurement {
    cc_pattern_cfg(label, el, machine, EngineConfig::default())
}

/// [`cc_pattern`] on a caller-supplied [`EngineConfig`] — used by the
/// guarded vs. proof-carrying interpreter comparison.
pub fn cc_pattern_cfg(
    label: &str,
    el: &EdgeList,
    machine: MachineConfig,
    engine_cfg: EngineConfig,
) -> CcMeasurement {
    let want = seq::cc_labels(el);
    let graph = DistGraph::build(
        el,
        Distribution::block(el.num_vertices(), machine.ranks),
        false,
    );
    let t0 = Instant::now();
    let mut out = Machine::run(machine, move |ctx| {
        let labels = dgp_algorithms::cc::cc_with_cfg(ctx, &graph, engine_cfg);
        (ctx.rank() == 0).then(|| (labels.snapshot(), ctx.stats()))
    });
    let millis = t0.elapsed().as_secs_f64() * 1e3;
    let (labels, am) = out[0].take().unwrap();
    finish_cc(label, millis, am.messages_sent, labels, &want)
}

/// Run hand-written label-propagation CC and measure.
pub fn cc_label_prop(label: &str, el: &EdgeList, machine: MachineConfig) -> CcMeasurement {
    let want = seq::cc_labels(el);
    let graph = DistGraph::build(
        el,
        Distribution::block(el.num_vertices(), machine.ranks),
        false,
    );
    let t0 = Instant::now();
    let mut out = Machine::run(machine, move |ctx| {
        let labels = handwritten::cc_label_propagation(ctx, &graph);
        (ctx.rank() == 0).then(|| (labels.snapshot(), ctx.stats()))
    });
    let millis = t0.elapsed().as_secs_f64() * 1e3;
    let (labels, am) = out[0].take().unwrap();
    finish_cc(label, millis, am.messages_sent, labels, &want)
}

/// Sequential union-find CC, measured.
pub fn cc_sequential(el: &EdgeList) -> CcMeasurement {
    let t0 = Instant::now();
    let labels = seq::cc_labels(el);
    let millis = t0.elapsed().as_secs_f64() * 1e3;
    let mut uniq: Vec<u64> = labels.clone();
    uniq.sort_unstable();
    uniq.dedup();
    CcMeasurement {
        label: "sequential union-find".into(),
        millis,
        messages: 0,
        components: uniq.len(),
        correct: true,
    }
}

fn finish_cc(
    label: &str,
    millis: f64,
    messages: u64,
    labels: Vec<u64>,
    want: &[u64],
) -> CcMeasurement {
    let mut uniq = labels.clone();
    uniq.sort_unstable();
    uniq.dedup();
    CcMeasurement {
        label: label.to_string(),
        millis,
        messages,
        components: uniq.len(),
        correct: labels == want,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn sssp_measurement_is_correct_and_counted() {
        let el = workloads::rmat_weighted(7, 8, 1);
        let oracle = seq::dijkstra(&el, 0);
        let m = sssp_pattern(
            "fp",
            &el,
            MachineConfig::new(2),
            EngineConfig::default(),
            0,
            SsspStrategy::FixedPoint,
            &oracle,
        );
        assert!(m.correct);
        assert!(m.messages > 0);
        assert!(m.relaxations > 0);
        assert!(m.relaxations <= m.attempts);
        // Epoch profiles: one per epoch, and their message deltas
        // reassemble the cumulative total.
        assert_eq!(m.profiles.len() as u64, m.epochs);
        let profiled: u64 = m.profiles.iter().map(|p| p.delta.messages_sent).sum();
        assert_eq!(profiled, m.messages);
    }

    #[test]
    fn cc_measurements_agree() {
        let el = workloads::blobs(4, 25, 3);
        let a = cc_pattern("ps", &el, MachineConfig::new(2));
        let b = cc_label_prop("lp", &el, MachineConfig::new(2));
        let c = cc_sequential(&el);
        assert!(a.correct && b.correct);
        assert_eq!(a.components, 4);
        assert_eq!(b.components, 4);
        assert_eq!(c.components, 4);
    }
}

//! Standard workloads for the experiment suite.

use dgp_graph::{generators, EdgeList};

/// Directed, weighted RMAT (Graph500 parameters) — the paper's motivating
/// "social network / data mining" shape.
pub fn rmat_weighted(scale: u32, edge_factor: usize, seed: u64) -> EdgeList {
    let mut el = generators::rmat(scale, edge_factor, generators::RmatParams::GRAPH500, seed);
    el.randomize_weights(0.05, 1.0, seed + 1);
    el
}

/// Unweighted RMAT.
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> EdgeList {
    generators::rmat(scale, edge_factor, generators::RmatParams::GRAPH500, seed)
}

/// Weighted square grid — the long-diameter "road network" shape that
/// separates Δ-stepping from chaotic relaxation.
pub fn grid_weighted(side: u64, seed: u64) -> EdgeList {
    let mut el = generators::grid2d(side, side);
    el.randomize_weights(0.2, 2.0, seed);
    el
}

/// Undirected multi-component blob graph — the CC workload.
pub fn blobs(k: u64, size: u64, seed: u64) -> EdgeList {
    generators::component_blobs(k, size, 2, seed)
}

/// Weighted Erdős–Rényi.
pub fn er_weighted(n: u64, m: usize, seed: u64) -> EdgeList {
    let mut el = generators::erdos_renyi(n, m, seed);
    el.randomize_weights(0.05, 1.0, seed + 1);
    el
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_shapes() {
        assert_eq!(rmat_weighted(6, 4, 1).num_vertices(), 64);
        assert!(rmat_weighted(6, 4, 1).weights.is_some());
        assert_eq!(grid_weighted(5, 1).num_vertices(), 25);
        assert_eq!(blobs(3, 10, 1).num_vertices(), 30);
        assert_eq!(er_weighted(10, 30, 1).num_edges(), 30);
    }
}

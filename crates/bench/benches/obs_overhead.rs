//! Overhead of the observability subsystem (`dgp-am::obs` and
//! `dgp-am::trace`): the same message-heavy SSSP run with every surface
//! pinned off, with the always-on defaults (flight recorder rings plus
//! 1-in-64 causal sampling — what every production run pays), with full
//! causal sampling, with span recording on, and with span recording
//! plus a trace ring. The "flight" row is the one the ISSUE gates on:
//! the always-on defaults must stay within a few percent of "off".

use criterion::{criterion_group, criterion_main, Criterion};

use dgp_algorithms::{seq, SsspStrategy};
use dgp_am::MachineConfig;
use dgp_bench::{measure, workloads};
use dgp_core::engine::EngineConfig;

fn bench_obs_overhead(c: &mut Criterion) {
    let el = workloads::rmat_weighted(11, 8, 41);
    let oracle = seq::dijkstra(&el, 0);
    let mut g = c.benchmark_group("obs/overhead");
    g.sample_size(10);
    for (label, cfg) in [
        // Every observability surface pinned off — the floor.
        ("off", MachineConfig::new(4).flight(0).trace_sampling(0)),
        // The always-on defaults: flight rings + 1-in-64 causal sampling.
        ("flight", MachineConfig::new(4)),
        // Causal tracing of every root — the E14/chaos-debug setting.
        ("flight+fulltrace", MachineConfig::new(4).trace_sampling(1)),
        ("profile", MachineConfig::new(4).profile(true)),
        (
            "profile+trace",
            MachineConfig::new(4).profile(true).trace(256),
        ),
    ] {
        let (el, oracle) = (el.clone(), oracle.clone());
        g.bench_function(label, move |b| {
            let cfg = cfg.clone();
            b.iter(|| {
                let m = measure::sssp_pattern(
                    "sssp",
                    &el,
                    cfg.clone(),
                    EngineConfig::default(),
                    0,
                    SsspStrategy::Delta(0.4),
                    &oracle,
                );
                assert!(m.correct);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);

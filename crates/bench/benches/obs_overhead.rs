//! Overhead of the observability subsystem (`dgp-am::obs`): the same
//! message-heavy SSSP run with profiling disabled (the default — spans
//! compile to one `Option` branch), with span recording on, and with
//! span recording plus a trace ring. The disabled row is the one that
//! matters: it must stay within noise of the pre-obs runtime.

use criterion::{criterion_group, criterion_main, Criterion};

use dgp_algorithms::{seq, SsspStrategy};
use dgp_am::MachineConfig;
use dgp_bench::{measure, workloads};
use dgp_core::engine::EngineConfig;

fn bench_obs_overhead(c: &mut Criterion) {
    let el = workloads::rmat_weighted(11, 8, 41);
    let oracle = seq::dijkstra(&el, 0);
    let mut g = c.benchmark_group("obs/overhead");
    g.sample_size(10);
    for (label, cfg) in [
        ("off", MachineConfig::new(4)),
        ("profile", MachineConfig::new(4).profile(true)),
        (
            "profile+trace",
            MachineConfig::new(4).profile(true).trace(256),
        ),
    ] {
        let (el, oracle) = (el.clone(), oracle.clone());
        g.bench_function(label, move |b| {
            let cfg = cfg.clone();
            b.iter(|| {
                let m = measure::sssp_pattern(
                    "sssp",
                    &el,
                    cfg.clone(),
                    EngineConfig::default(),
                    0,
                    SsspStrategy::Delta(0.4),
                    &oracle,
                );
                assert!(m.correct);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);

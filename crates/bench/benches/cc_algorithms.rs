//! Criterion benches for F3: connected-component algorithms.

use criterion::{criterion_group, criterion_main, Criterion};

use dgp_algorithms::seq;
use dgp_am::MachineConfig;
use dgp_bench::{measure, workloads};

fn bench_cc(c: &mut Criterion) {
    let el = workloads::blobs(8, 500, 7);
    let mut g = c.benchmark_group("cc/blobs8x500");
    g.sample_size(10);
    g.bench_function("parallel_search_pattern", |b| {
        b.iter(|| {
            let m = measure::cc_pattern("ps", &el, MachineConfig::new(4));
            assert!(m.correct);
            m.components
        });
    });
    g.bench_function("label_propagation_am", |b| {
        b.iter(|| {
            let m = measure::cc_label_prop("lp", &el, MachineConfig::new(4));
            assert!(m.correct);
            m.components
        });
    });
    g.bench_function("sequential_union_find", |b| {
        b.iter(|| seq::cc_labels(&el));
    });
    g.finish();
}

criterion_group!(benches, bench_cc);
criterion_main!(benches);

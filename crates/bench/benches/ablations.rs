//! Criterion benches for E5/E6/E7: synchronization schemes, termination
//! detection, and abstraction overhead.

use criterion::{criterion_group, criterion_main, Criterion};

use dgp_algorithms::{seq, SsspStrategy};
use dgp_am::{MachineConfig, TerminationMode};
use dgp_bench::{measure, workloads};
use dgp_core::engine::{EngineConfig, SyncMode};
use dgp_graph::properties::LockGranularity;

/// E5: atomic vs lock-map synchronization under handler concurrency.
fn bench_sync_modes(c: &mut Criterion) {
    let el = workloads::rmat_weighted(11, 8, 51);
    let oracle = seq::dijkstra(&el, 0);
    let mut g = c.benchmark_group("ablation/sync");
    g.sample_size(10);
    let configs: Vec<(&str, EngineConfig)> = vec![
        (
            "atomic",
            EngineConfig {
                sync: SyncMode::Atomic,
                ..Default::default()
            },
        ),
        (
            "lock_per_vertex",
            EngineConfig {
                sync: SyncMode::LockMap,
                lock_granularity: LockGranularity::PerVertex,
                ..Default::default()
            },
        ),
        (
            "lock_block64",
            EngineConfig {
                sync: SyncMode::LockMap,
                lock_granularity: LockGranularity::Block(64),
                ..Default::default()
            },
        ),
        (
            "lock_striped16",
            EngineConfig {
                sync: SyncMode::LockMap,
                lock_granularity: LockGranularity::Striped(16),
                ..Default::default()
            },
        ),
    ];
    for (label, cfg) in configs {
        g.bench_function(label, |b| {
            b.iter(|| {
                let m = measure::sssp_pattern(
                    label,
                    &el,
                    MachineConfig::new(2).threads_per_rank(4),
                    cfg,
                    0,
                    SsspStrategy::Delta(0.4),
                    &oracle,
                );
                assert!(m.correct);
            });
        });
    }
    g.finish();
}

/// E6: termination-detection algorithms under an epoch-heavy schedule.
fn bench_termination(c: &mut Criterion) {
    let el = workloads::rmat_weighted(10, 8, 61);
    let oracle = seq::dijkstra(&el, 0);
    let mut g = c.benchmark_group("ablation/termination");
    g.sample_size(10);
    for (label, mode) in [
        ("shared_counters", TerminationMode::SharedCounters),
        ("four_counter_waves", TerminationMode::FourCounterWave),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let m = measure::sssp_pattern(
                    label,
                    &el,
                    MachineConfig::new(4).termination(mode),
                    EngineConfig::default(),
                    0,
                    SsspStrategy::Delta(0.2),
                    &oracle,
                );
                assert!(m.correct);
            });
        });
    }
    g.finish();
}

/// E7: pattern engine vs hand-written vs sequential.
fn bench_abstraction(c: &mut Criterion) {
    let el = workloads::rmat_weighted(11, 8, 71);
    let oracle = seq::dijkstra(&el, 0);
    let mut g = c.benchmark_group("ablation/abstraction");
    g.sample_size(10);
    g.bench_function("pattern_engine", |b| {
        b.iter(|| {
            let m = measure::sssp_pattern(
                "p",
                &el,
                MachineConfig::new(4),
                EngineConfig::default(),
                0,
                SsspStrategy::Delta(0.4),
                &oracle,
            );
            assert!(m.correct);
        });
    });
    g.bench_function("pattern_engine_inline_local", |b| {
        b.iter(|| {
            let m = measure::sssp_pattern(
                "pi",
                &el,
                MachineConfig::new(4),
                EngineConfig {
                    self_send: false,
                    ..Default::default()
                },
                0,
                SsspStrategy::Delta(0.4),
                &oracle,
            );
            assert!(m.correct);
        });
    });
    g.bench_function("handwritten_am", |b| {
        b.iter(|| {
            let m = measure::sssp_handwritten("h", &el, MachineConfig::new(4), 0, None, &oracle);
            assert!(m.correct);
        });
    });
    g.bench_function("sequential_dijkstra", |b| {
        b.iter(|| seq::dijkstra(&el, 0));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sync_modes,
    bench_termination,
    bench_abstraction
);
criterion_main!(benches);

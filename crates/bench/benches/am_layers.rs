//! Criterion benches for E1/E2/E3: the AM++ message layers (coalescing,
//! caching, reduction), measured both as microbenchmarks and inside real
//! algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dgp_algorithms::{handwritten, seq, SsspStrategy};
use dgp_am::{Machine, MachineConfig};
use dgp_bench::{measure, workloads};
use dgp_core::engine::EngineConfig;
use dgp_graph::properties::EdgeMap;
use dgp_graph::{DistGraph, Distribution};

/// E1: coalescing capacity sweep over pattern SSSP.
fn bench_coalescing(c: &mut Criterion) {
    let el = workloads::rmat_weighted(11, 8, 21);
    let oracle = seq::dijkstra(&el, 0);
    let mut g = c.benchmark_group("am/coalescing");
    g.sample_size(10);
    for cap in [1usize, 16, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                let m = measure::sssp_pattern(
                    "sssp",
                    &el,
                    MachineConfig::new(4).coalescing(cap),
                    EngineConfig::default(),
                    0,
                    SsspStrategy::Delta(0.4),
                    &oracle,
                );
                assert!(m.correct);
            });
        });
    }
    g.finish();
}

/// E2: caching on/off over hand-written BFS.
fn bench_caching(c: &mut Criterion) {
    let el = workloads::rmat(12, 16, 31);
    let graph = DistGraph::build(&el, Distribution::block(el.num_vertices(), 4), false);
    let mut g = c.benchmark_group("am/caching");
    g.sample_size(10);
    for (label, slots) in [("off", None), ("4096", Some(4096usize))] {
        let graph = graph.clone();
        g.bench_function(label, move |b| {
            let graph = graph.clone();
            b.iter(|| {
                let graph = graph.clone();
                Machine::run(MachineConfig::new(4), move |ctx| {
                    match slots {
                        None => handwritten::bfs(ctx, &graph, 0),
                        Some(s) => handwritten::bfs_cached(ctx, &graph, 0, s),
                    };
                });
            });
        });
    }
    g.finish();
}

/// E3: reduction on/off over hand-written SSSP.
fn bench_reduction(c: &mut Criterion) {
    let el = workloads::rmat_weighted(11, 16, 41);
    let graph = DistGraph::build(&el, Distribution::block(el.num_vertices(), 4), false);
    let weights = EdgeMap::from_weights(&graph, &el);
    let mut g = c.benchmark_group("am/reduction");
    g.sample_size(10);
    for (label, slots) in [("off", None), ("4096", Some(4096usize))] {
        let graph = graph.clone();
        let weights = weights.clone();
        g.bench_function(label, move |b| {
            let graph = graph.clone();
            let weights = weights.clone();
            b.iter(|| {
                let graph = graph.clone();
                let weights = weights.clone();
                Machine::run(MachineConfig::new(4), move |ctx| {
                    match slots {
                        None => handwritten::sssp(ctx, &graph, &weights, 0),
                        Some(s) => handwritten::sssp_reduced(ctx, &graph, &weights, 0, s),
                    };
                });
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_coalescing, bench_caching, bench_reduction);
criterion_main!(benches);

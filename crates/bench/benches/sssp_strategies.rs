//! Criterion benches for F1/E4/E10: one relax pattern under the paper's
//! strategies, on the two workload shapes that separate them (skewed RMAT
//! vs long-diameter grid).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dgp_algorithms::{seq, SsspStrategy};
use dgp_am::MachineConfig;
use dgp_bench::{measure, workloads};
use dgp_core::engine::EngineConfig;

fn bench_strategies(c: &mut Criterion) {
    let rmat = workloads::rmat_weighted(11, 8, 11);
    let grid = workloads::grid_weighted(40, 5);
    for (wname, el) in [("rmat11", &rmat), ("grid40", &grid)] {
        let oracle = seq::dijkstra(el, 0);
        let mut g = c.benchmark_group(format!("sssp/{wname}"));
        g.sample_size(10);
        for (label, strategy) in [
            ("fixed_point", SsspStrategy::FixedPoint),
            ("delta_0.4", SsspStrategy::Delta(0.4)),
            ("delta_4", SsspStrategy::Delta(4.0)),
            ("delta_async_0.4", SsspStrategy::DeltaAsync(0.4)),
        ] {
            g.bench_with_input(BenchmarkId::from_parameter(label), &strategy, |b, &s| {
                b.iter(|| {
                    let m = measure::sssp_pattern(
                        label,
                        el,
                        MachineConfig::new(4),
                        EngineConfig::default(),
                        0,
                        s,
                        &oracle,
                    );
                    assert!(m.correct);
                    m.relaxations
                });
            });
        }
        g.finish();
    }
}

fn bench_sequential_baseline(c: &mut Criterion) {
    let el = workloads::rmat_weighted(11, 8, 11);
    c.bench_function("sssp/rmat11/sequential_dijkstra", |b| {
        b.iter(|| seq::dijkstra(&el, 0));
    });
}

criterion_group!(benches, bench_strategies, bench_sequential_baseline);
criterion_main!(benches);

//! Planner microbenchmarks: how fast patterns compile to message
//! programs (the cost the paper's proposed automatic translator adds at
//! registration time — it runs once per action, so micro- rather than
//! milliseconds matter only for enormous pattern libraries).

use criterion::{criterion_group, criterion_main, Criterion};

use dgp_algorithms::patterns;
use dgp_core::ir::{ActionIr, ConditionIr, ModKind, ModificationIr, Place, ReadRef, Slot};
use dgp_core::plan::{compile, PlanMode};

fn fig5_ir() -> ActionIr {
    let (a, b, c, d, e, f, val, val2) = (0u32, 1, 2, 3, 4, 5, 6, 7);
    let n1 = Place::map_at(a, Place::Input);
    let n2 = Place::map_at(b, n1.clone());
    let n3 = Place::map_at(c, Place::Input);
    let n4 = Place::map_at(d, n3.clone());
    let u = Place::map_at(e, n4.clone());
    let n5 = Place::map_at(f, u.clone());
    ActionIr {
        name: "fig5".into(),
        generator: dgp_core::ir::GeneratorIr::None,
        slots: vec![
            ReadRef::VertexProp {
                map: a,
                at: Place::Input,
            },
            ReadRef::VertexProp { map: b, at: n1 },
            ReadRef::VertexProp { map: val2, at: n2 },
            ReadRef::VertexProp {
                map: c,
                at: Place::Input,
            },
            ReadRef::VertexProp { map: d, at: n3 },
            ReadRef::VertexProp { map: e, at: n4 },
            ReadRef::VertexProp { map: f, at: u },
            ReadRef::VertexProp {
                map: val,
                at: n5.clone(),
            },
        ],
        conditions: vec![ConditionIr {
            reads: (0..8).map(Slot).collect(),
            mods: vec![ModificationIr {
                map: val,
                at: n5,
                reads: vec![Slot(1)],
                kind: ModKind::Assign,
            }],
            is_else: false,
        }],
    }
}

fn bench_compile(c: &mut Criterion) {
    let relax = patterns::relax(0, 1);
    let search = patterns::cc_search(0, 1);
    let fig5 = fig5_ir();
    let mut g = c.benchmark_group("plan/compile");
    g.bench_function("sssp_relax", |b| {
        b.iter(|| compile(&relax.ir, PlanMode::Optimized).unwrap());
    });
    g.bench_function("cc_search_two_conditions", |b| {
        b.iter(|| compile(&search.ir, PlanMode::Optimized).unwrap());
    });
    g.bench_function("fig5_deep_tree_faithful", |b| {
        b.iter(|| compile(&fig5, PlanMode::Faithful).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);

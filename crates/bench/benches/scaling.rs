//! Criterion benches for E8/E9: problem-size and rank scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dgp_algorithms::seq;
use dgp_algorithms::SsspStrategy;
use dgp_am::{Machine, MachineConfig};
use dgp_bench::{measure, workloads};
use dgp_core::engine::EngineConfig;
use dgp_graph::{DistGraph, Distribution};

/// E8: BFS throughput across graph scales (edges/second).
fn bench_scale_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling/rmat_bfs");
    g.sample_size(10);
    for scale in [10u32, 12, 14] {
        let el = workloads::rmat(scale, 16, 81);
        let graph = DistGraph::build(&el, Distribution::block(el.num_vertices(), 4), false);
        g.throughput(Throughput::Elements(el.num_edges() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(scale), &graph, |b, graph| {
            b.iter(|| {
                let graph = graph.clone();
                Machine::run(MachineConfig::new(4), move |ctx| {
                    dgp_algorithms::bfs::bfs(ctx, &graph, 0);
                });
            });
        });
    }
    g.finish();
}

/// E9: strong scaling over rank counts.
fn bench_rank_sweep(c: &mut Criterion) {
    let el = workloads::rmat_weighted(12, 8, 91);
    let oracle = seq::dijkstra(&el, 0);
    let mut g = c.benchmark_group("scaling/ranks_sssp");
    g.sample_size(10);
    for ranks in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let m = measure::sssp_pattern(
                    "s",
                    &el,
                    MachineConfig::new(ranks),
                    EngineConfig::default(),
                    0,
                    SsspStrategy::Delta(0.4),
                    &oracle,
                );
                assert!(m.correct);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scale_sweep, bench_rank_sweep);
criterion_main!(benches);

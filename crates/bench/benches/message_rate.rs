//! Raw message throughput of the AM runtime hot path: an all-to-all
//! storm swept over coalescing capacities (per-message overhead dominates
//! at capacity 1; the runtime should approach hardware-bound rates at the
//! default 64), plus a handler-re-send ping-pong that exercises the
//! receive→handle→send chain. These are the headline numbers that the
//! zero-contention hot-path work (batched counters, epoch-frozen dispatch
//! tables, pooled envelopes) is measured by; `experiments --bench-json`
//! records the same scenarios into `BENCH_*.json` for CI smoke tracking.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use dgp_bench::bench_json::{all_to_all, ping_pong};

fn bench_all_to_all(c: &mut Criterion) {
    let ranks = 4;
    let per_rank = 100_000u64;
    let mut g = c.benchmark_group("message_rate/all_to_all");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ranks as u64 * per_rank));
    for cap in [1usize, 16, 64, 256] {
        g.bench_function(format!("coalescing={cap}"), |b| {
            b.iter(|| {
                let (msgs, _) = all_to_all(ranks, per_rank, cap);
                assert_eq!(msgs, ranks as u64 * per_rank);
            });
        });
    }
    g.finish();
}

fn bench_ping_pong(c: &mut Criterion) {
    let (chains, hops) = (64u64, 1_000u64);
    let mut g = c.benchmark_group("message_rate/ping_pong");
    g.sample_size(10);
    g.throughput(Throughput::Elements(chains * hops));
    for cap in [1usize, 64] {
        g.bench_function(format!("coalescing={cap}"), |b| {
            b.iter(|| {
                let (msgs, _) = ping_pong(chains, hops, cap);
                assert_eq!(msgs, chains * hops);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_all_to_all, bench_ping_pong);
criterion_main!(benches);

//! Graphviz (DOT) rendering of the analysis artifacts: dependency trees
//! (Def. 2 / Fig. 5) and compiled message programs, with optional overlay
//! of the static verifier's findings ([`crate::verify`]). Purely textual —
//! pipe the output into `dot -Tsvg` to regenerate the paper's figures.

use crate::depgraph::DepTree;
use crate::ir::Place;
use crate::plan::{ExecPlan, ExecStep};
use crate::verify::{Diagnostic, Severity};

fn place_label(p: &Place) -> String {
    match p {
        Place::Input => "v".into(),
        Place::GenVertex => "u".into(),
        Place::GenSrc => "src(e)".into(),
        Place::GenTrg => "trg(e)".into(),
        Place::MapAt(m, inner) => format!("p{m}[{}]", place_label(inner)),
    }
}

impl DepTree {
    /// Render as DOT: solid edges are the tree (one message per traversal
    /// move), doubled circles are gather stops, and the dashed path shows
    /// the straight-jump order — the shape of the paper's Fig. 5.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph deptree {\n  rankdir=TB;\n");
        for (i, p) in self.nodes.iter().enumerate() {
            let shape = if self.required[i] {
                "doublecircle"
            } else {
                "circle"
            };
            // Annotate each stop with its Def. 1 locality facts: where the
            // place's identity becomes known, and whether a gather is
            // required there.
            let known = place_label(&p.known_at());
            let req = if self.required[i] {
                "required"
            } else {
                "pass-through"
            };
            out.push_str(&format!(
                "  n{i} [label=\"{}\\nknown at {known} · {req}\", shape={shape}];\n",
                place_label(p)
            ));
        }
        for (i, &parent) in self.parent.iter().enumerate() {
            if i != 0 {
                out.push_str(&format!("  n{parent} -> n{i};\n"));
            }
        }
        // The optimized traversal as a dashed overlay.
        let order = self.optimized_order();
        let mut prev = 0usize;
        for &n in &order {
            out.push_str(&format!(
                "  n{prev} -> n{n} [style=dashed, color=gray, constraint=false];\n"
            ));
            prev = n;
        }
        out.push_str("}\n");
        out
    }
}

impl ExecPlan {
    /// Render the message program as DOT: boxes are steps, solid edges are
    /// control flow (labelled T/F at branches), and `goto` boxes name the
    /// locality the message travels to.
    pub fn to_dot(&self) -> String {
        self.to_dot_annotated(&[])
    }

    /// [`to_dot`](Self::to_dot), with the verifier's findings overlaid:
    /// a step anchoring an error-severity diagnostic is filled red, a
    /// warning-severity one orange, and the finding's code joins the box
    /// label. Pass [`crate::verify::verify_action`]'s output.
    pub fn to_dot_annotated(&self, diagnostics: &[Diagnostic]) -> String {
        let worst_at = |i: usize| -> Option<&Diagnostic> {
            diagnostics
                .iter()
                .filter(|d| d.step == Some(i))
                .max_by_key(|d| d.severity)
        };
        let mut out = String::from("digraph plan {\n  node [shape=box, fontname=monospace];\n");
        for (i, s) in self.steps.iter().enumerate() {
            let (label, edges): (String, Vec<(usize, &str)>) = match s {
                ExecStep::Goto { to, next } => (
                    format!("goto {}", place_label(&self.places[*to])),
                    vec![(*next, "")],
                ),
                ExecStep::Gather { slots, next } => {
                    (format!("gather {slots:?}"), vec![(*next, "")])
                }
                ExecStep::Eval {
                    cond,
                    on_true,
                    on_false,
                    ..
                } => (
                    format!("eval c{cond}"),
                    vec![(*on_true, "T"), (*on_false, "F")],
                ),
                ExecStep::EvalModify {
                    cond,
                    mods,
                    on_true,
                    on_false,
                    ..
                } => (
                    format!("eval+modify c{cond} {mods:?}"),
                    vec![(*on_true, "T"), (*on_false, "F")],
                ),
                ExecStep::ModifyGroup {
                    cond, mods, next, ..
                } => (format!("modify c{cond} {mods:?}"), vec![(*next, "")]),
                ExecStep::End => ("end".into(), vec![]),
            };
            match worst_at(i) {
                Some(d) => {
                    let fill = match d.severity {
                        Severity::Error => "\"#ffb3b3\"",
                        Severity::Warning => "\"#ffd9a0\"",
                    };
                    out.push_str(&format!(
                        "  s{i} [label=\"{i}: {label}\\n{} {}\", style=filled, fillcolor={fill}];\n",
                        d.code.as_str(),
                        d.code.title()
                    ));
                }
                None => out.push_str(&format!("  s{i} [label=\"{i}: {label}\"];\n")),
            }
            for (t, lbl) in edges {
                if lbl.is_empty() {
                    out.push_str(&format!("  s{i} -> s{t};\n"));
                } else {
                    out.push_str(&format!("  s{i} -> s{t} [label=\"{lbl}\"];\n"));
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ActionIr, ConditionIr, GeneratorIr, ModKind, ModificationIr, ReadRef, Slot};
    use crate::plan::{compile, PlanMode};

    #[test]
    fn deptree_dot_contains_nodes_and_dashed_path() {
        let a = Place::map_at(0, Place::Input);
        let b = Place::map_at(1, a.clone());
        let t = DepTree::build(&[a, b]);
        let dot = t.to_dot();
        assert!(dot.contains("digraph deptree"));
        assert!(dot.contains("p0[v]"));
        assert!(dot.contains("p1[p0[v]]"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn plan_dot_renders_branches() {
        let ir = ActionIr {
            name: "x".into(),
            generator: GeneratorIr::OutEdges,
            slots: vec![
                ReadRef::VertexProp {
                    map: 0,
                    at: Place::GenTrg,
                },
                ReadRef::VertexProp {
                    map: 0,
                    at: Place::Input,
                },
            ],
            conditions: vec![ConditionIr {
                reads: vec![Slot(0), Slot(1)],
                mods: vec![ModificationIr {
                    map: 0,
                    at: Place::GenTrg,
                    reads: vec![Slot(1)],
                    kind: ModKind::Assign,
                }],
                is_else: false,
            }],
        };
        let plan = compile(&ir, PlanMode::Optimized).unwrap();
        let dot = plan.to_dot();
        assert!(dot.contains("digraph plan"));
        assert!(dot.contains("eval+modify"));
        assert!(dot.contains("label=\"T\""));
        assert!(dot.contains("goto trg(e)"));
    }

    #[test]
    fn deptree_dot_names_known_at_localities() {
        let a = Place::map_at(0, Place::Input);
        let t = DepTree::build(&[a, Place::GenTrg]);
        let dot = t.to_dot();
        assert!(dot.contains("known at v"), "{dot}");
        assert!(
            dot.contains("required") || dot.contains("pass-through"),
            "{dot}"
        );
    }

    #[test]
    fn annotated_plan_dot_colors_findings() {
        let ir = ActionIr {
            name: "x".into(),
            generator: GeneratorIr::OutEdges,
            slots: vec![
                ReadRef::VertexProp {
                    map: 0,
                    at: Place::GenTrg,
                },
                ReadRef::VertexProp {
                    map: 0,
                    at: Place::Input,
                },
            ],
            conditions: vec![ConditionIr {
                reads: vec![Slot(0), Slot(1)],
                mods: vec![ModificationIr {
                    map: 0,
                    at: Place::GenTrg,
                    reads: vec![Slot(1)],
                    kind: ModKind::Assign,
                }],
                is_else: false,
            }],
        };
        let mut plan = compile(&ir, PlanMode::Optimized).unwrap();
        // Clean plan: the annotated render matches the plain one.
        let diags = crate::verify::verify_action(&ir, &plan);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(plan.to_dot_annotated(&diags), plan.to_dot());
        // Tamper a gather so L001 fires, and the step turns red.
        for step in &mut plan.steps {
            if let ExecStep::Gather { slots, .. } = step {
                slots.push(0); // dist[trg(e)] gathered at v
                break;
            }
        }
        let diags = crate::verify::verify_action(&ir, &plan);
        assert!(!diags.is_empty());
        let dot = plan.to_dot_annotated(&diags);
        assert!(dot.contains("fillcolor=\"#ffb3b3\""), "{dot}");
        assert!(dot.contains("L001 NonLocalRead"), "{dot}");
    }
}

//! The value dependency graph (Definition 2) and its gather traversals.
//!
//! "The dependency graph stores dependencies between values. A directed
//! edge (v1, v2) is added to the graph between the values v1 and v2 if v1
//! is the locality of v2." Because every place's identity becomes known at
//! exactly one other place ([`Place::known_at`]), the graph restricted to
//! the localities an action needs is a **tree rooted at the input vertex**,
//! and gathering is a depth-first walk of it (§IV-A):
//!
//! 1. find the required localities from the property accesses;
//! 2. prune the tree of edges not on a path to a required locality
//!    (construction here only ever *adds* such paths);
//! 3. construct gather messages by walking the pruned tree depth-first,
//!    every jump between localities being one message;
//! 4. the final message evaluates the condition.
//!
//! The walk comes in the paper's two flavors: the presentation's
//! return-to-parent DFS ([`DepTree::faithful_walk`]) and the noted
//! optimization of jumping straight to the next required locality
//! ([`DepTree::optimized_order`]) — compare Fig. 5's 8-message walk with
//! its dashed shortcut.

use crate::ir::Place;

/// The pruned dependency tree of an action's required localities.
#[derive(Debug, Clone)]
pub struct DepTree {
    /// Interned places; index 0 is always [`Place::Input`] (the root).
    pub nodes: Vec<Place>,
    /// Parent index per node (root points at itself).
    pub parent: Vec<usize>,
    /// Children per node, in first-required order.
    pub children: Vec<Vec<usize>>,
    /// Whether a value must be gathered *at* this node.
    pub required: Vec<bool>,
}

/// One move of a gather walk; every move is one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkMove {
    /// Descend from `from` to its child `to`.
    Down {
        /// Node the move leaves.
        from: usize,
        /// Node the move arrives at.
        to: usize,
    },
    /// Return from `from` to its parent `to`.
    Up {
        /// Node the move leaves.
        from: usize,
        /// Node the move arrives at.
        to: usize,
    },
}

impl WalkMove {
    /// The node this move arrives at.
    pub fn to(&self) -> usize {
        match *self {
            WalkMove::Down { to, .. } | WalkMove::Up { to, .. } => to,
        }
    }
}

impl DepTree {
    /// Build the tree for the given required localities (order matters: it
    /// fixes sibling visit order, mirroring declaration order in the
    /// pattern source).
    pub fn build(required: &[Place]) -> DepTree {
        let mut t = DepTree {
            nodes: vec![Place::Input],
            parent: vec![0],
            children: vec![Vec::new()],
            required: vec![false],
        };
        for p in required {
            let idx = t.intern(p);
            t.required[idx] = true;
        }
        t
    }

    /// Index of `p`, inserting it (and its ancestors) if absent.
    pub fn intern(&mut self, p: &Place) -> usize {
        if let Some(i) = self.nodes.iter().position(|n| n == p) {
            return i;
        }
        let parent_place = p.known_at();
        let parent_idx = self.intern(&parent_place);
        let idx = self.nodes.len();
        self.nodes.push(p.clone());
        self.parent.push(parent_idx);
        self.children.push(Vec::new());
        self.required.push(false);
        self.children[parent_idx].push(idx);
        idx
    }

    /// Index of an already-interned place.
    pub fn index_of(&self, p: &Place) -> Option<usize> {
        self.nodes.iter().position(|n| n == p)
    }

    /// Number of localities that must be visited (excluding the root unless
    /// it is itself required — values at the root are free, the action
    /// starts there).
    pub fn required_count(&self) -> usize {
        self.required
            .iter()
            .enumerate()
            .filter(|&(i, &r)| r && i != 0)
            .count()
    }

    /// Required localities in depth-first pre-order (the order values are
    /// gathered; guarantees a locality's identity-providing ancestor is
    /// visited first). Excludes the root.
    pub fn optimized_order(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.pre_order(0, &mut |i| {
            if i != 0 && self.required[i] {
                out.push(i);
            }
        });
        out
    }

    fn pre_order(&self, node: usize, f: &mut impl FnMut(usize)) {
        f(node);
        for &c in &self.children[node] {
            self.pre_order(c, f);
        }
    }

    /// The paper's presentation walk: full depth-first traversal with
    /// explicit returns to the parent between sibling subtrees, trimmed so
    /// the walk ends at the last required locality (the evaluation site
    /// follows; there is no "going home" message). Every move is one
    /// message.
    pub fn faithful_walk(&self) -> Vec<WalkMove> {
        let mut moves = Vec::new();
        self.walk_rec(0, &mut moves);
        // Trim trailing Up moves: the gather ends at the last value.
        while matches!(moves.last(), Some(WalkMove::Up { .. })) {
            moves.pop();
        }
        moves
    }

    fn walk_rec(&self, node: usize, moves: &mut Vec<WalkMove>) {
        for &c in &self.children[node] {
            if !self.subtree_has_required(c) {
                continue; // pruned (paper step 2)
            }
            moves.push(WalkMove::Down { from: node, to: c });
            self.walk_rec(c, moves);
            moves.push(WalkMove::Up { from: c, to: node });
        }
    }

    fn subtree_has_required(&self, node: usize) -> bool {
        self.required[node]
            || self.children[node]
                .iter()
                .any(|&c| self.subtree_has_required(c))
    }

    /// Messages needed by the faithful walk.
    pub fn faithful_message_count(&self) -> usize {
        self.faithful_walk().len()
    }

    /// Messages needed by the straight-jump optimization.
    pub fn optimized_message_count(&self) -> usize {
        self.optimized_order().len()
    }
}

impl std::fmt::Display for DepTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn rec(
            t: &DepTree,
            node: usize,
            depth: usize,
            f: &mut std::fmt::Formatter<'_>,
        ) -> std::fmt::Result {
            writeln!(
                f,
                "{}{:?}{}",
                "  ".repeat(depth),
                t.nodes[node],
                if t.required[node] { "  [gather]" } else { "" }
            )?;
            for &c in &t.children[node] {
                rec(t, c, depth + 1, f)?;
            }
            Ok(())
        }
        rec(self, 0, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::MapId;

    const P: MapId = 10; // a vertex-valued "pointer" map

    #[test]
    fn sssp_tree_is_flat() {
        // relax gathers dist[v], weight[e] (both at Input) and dist[trg(e)].
        let t = DepTree::build(&[Place::Input, Place::GenTrg]);
        assert_eq!(t.nodes.len(), 2);
        assert_eq!(t.required_count(), 1); // only trg(e) needs a visit
        assert_eq!(t.faithful_message_count(), 1);
        assert_eq!(t.optimized_message_count(), 1);
    }

    #[test]
    fn chained_indirection_orders_ancestors_first() {
        // dist[p[p[v]]]: need p[v] (at v), then p[p[v]] (at p[v]), then the
        // value at p[p[v]].
        let pv = Place::map_at(P, Place::Input);
        let ppv = Place::map_at(P, pv.clone());
        let t = DepTree::build(&[ppv.clone(), pv.clone()]);
        let order = t.optimized_order();
        let places: Vec<_> = order.iter().map(|&i| t.nodes[i].clone()).collect();
        assert_eq!(places, vec![pv, ppv]);
        assert_eq!(t.faithful_message_count(), 2); // v -> p[v] -> p[p[v]]
    }

    #[test]
    fn siblings_cost_returns_in_faithful_mode() {
        // Two independent branches: v -> a, v -> b (a = p[v], b = q[v]).
        let a = Place::map_at(P, Place::Input);
        let b = Place::map_at(P + 1, Place::Input);
        let t = DepTree::build(&[a, b]);
        // Faithful: down a, up, down b = 3 messages; optimized: 2.
        assert_eq!(t.faithful_message_count(), 3);
        assert_eq!(t.optimized_message_count(), 2);
    }

    #[test]
    fn pruning_skips_unrequired_subtrees() {
        let a = Place::map_at(P, Place::Input);
        let deep = Place::map_at(P + 1, a.clone());
        let mut t = DepTree::build(std::slice::from_ref(&a));
        // Intern a deeper node but do not require it: walk must not visit.
        t.intern(&deep);
        assert_eq!(t.faithful_message_count(), 1);
        assert_eq!(t.optimized_message_count(), 1);
    }

    #[test]
    fn root_required_is_free() {
        let t = DepTree::build(&[Place::Input]);
        assert_eq!(t.required_count(), 0);
        assert_eq!(t.faithful_message_count(), 0);
        assert!(t.optimized_order().is_empty());
    }

    #[test]
    fn display_renders_tree() {
        let a = Place::map_at(P, Place::Input);
        let t = DepTree::build(&[a]);
        let s = format!("{t}");
        assert!(s.contains("Input"));
        assert!(s.contains("[gather]"));
    }
}

#![warn(missing_docs)]

//! # dgp-core — declarative patterns for imperative distributed graph
//! algorithms
//!
//! The primary contribution of the reproduced paper (Zalewski, Edmonds,
//! Lumsdaine; IPDPS Workshops 2015): graph operations are written as
//! **patterns** — declarative actions over property maps with implicit,
//! automatically-synthesized communication — and driven by imperative
//! **strategies** (`fixed_point`, `once`, Δ-stepping) that apply them in
//! **epochs**.
//!
//! Pipeline:
//!
//! 1. [`builder::ActionBuilder`] — write an action (generator, reads,
//!    condition chain, modifications); produces an analyzed [`ir::ActionIr`]
//!    plus the host-language closures for tests and right-hand sides;
//! 2. [`plan::compile`] — locality analysis (Def. 1 via
//!    [`ir::Place::known_at`]), the value dependency graph (Def. 2,
//!    [`depgraph::DepTree`]), and the gather/evaluate message program of
//!    §IV-A, with condition↔modification merging and gather elision;
//! 3. [`engine::PatternEngine`] — executes the program over the `dgp-am`
//!    runtime: one registered message type, object-addressed by the
//!    locality each step runs at; synchronization per §IV-B (lock map or
//!    atomic read-modify-write); dependency detection fires per-action
//!    **work hooks** (§III-C);
//! 4. [`strategies`] — the paper's strategies, parameterized over any
//!    action through the work-hook customization point.

pub mod builder;
pub mod depgraph;
pub mod engine;
pub mod ir;
pub mod obs;
pub mod pattern;
pub mod plan;
pub mod strategies;
pub mod verify;
pub mod viz;

pub use builder::{ActionBuilder, BuildError};
pub use engine::{ActionId, EngineConfig, PatternEngine, SyncMode, Val};
pub use ir::{GenItem, GeneratorIr, MapId, ModKind, Place, PropertyKind, Slot};
pub use pattern::{Pattern, PatternBuilder};
pub use plan::{CommPlan, ExecPlan, PlanError, PlanMode, VerifiedFacts};
pub use verify::{DiagCode, Diagnostic, Report, Severity};

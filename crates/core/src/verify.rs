//! Static verification of patterns and their synthesized message plans.
//!
//! The paper's claim is that declarative patterns make communication
//! *analyzable*: localities are computed (Def. 1), the value dependency
//! graph is computed (Def. 2), and read/write synchronization is an
//! argued property of the synthesized plan (§III-C, §IV-A). This module
//! turns those computed artifacts into *checked* invariants. Four
//! analyses run over an [`ActionIr`] and its compiled [`ExecPlan`]:
//!
//! 1. **Locality soundness** (`L001`) — an abstract interpretation of the
//!    message program, independent of the planner: every gather, fresh
//!    local read, and modification must execute at the Def. 1 locality of
//!    the value it touches. The owner-only discipline holds by
//!    construction of the planner; this re-derives it from the plan text.
//! 2. **Def-use over message programs** (`D002`) — along *every*
//!    control-flow path, a payload slot consumed by a condition test or a
//!    modification right-hand side must have been gathered earlier on
//!    that path, including under gather elision and merging (§IV-A steps
//!    5–6).
//! 3. **Epoch write races** (`R003`) — a conservative may-read/may-write
//!    conflict check per `(map, locality class)`. An assignment whose
//!    guard reads the same map at an aliasing place, evaluated *outside*
//!    the merged evaluate-and-modify step, is a stale-guard
//!    (check-then-act) race and an error — the merged step "is not a mere
//!    optimization" precisely because its placement is the
//!    synchronization mechanism (§III-C). Distinct unprotected write
//!    sites aliasing on the same map are reported as write/write warnings.
//!    Insertions are commutative reductions and exempt.
//! 4. **Self-trigger lint** (`T004`, warning) — a modification that
//!    re-enables its own action (the §III-C dependency rule fires) with
//!    no merged guard on the written value can loop forever under
//!    `fixed_point` driving; such actions need a strictly-decreasing
//!    guard or level-synchronized `once` driving.
//!
//! Structural failures surface as `S005` (malformed action or plan) and
//! `P006` (a place used as a locality whose resolving read is not
//! declared). [`crate::builder::ActionBuilder::build`] runs
//! [`verify_ir`] over both plan modes and rejects actions with
//! error-severity diagnostics; warnings ride along on the built action.

use crate::ir::{ActionIr, ModKind, Place, ReadRef, Slot};
use crate::plan::{compile, ExecPlan, PlanMode};

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but legal; the action still builds.
    Warning,
    /// A verified invariant is broken; the action is rejected at build.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes (the catalogue of `docs/INTERNALS.md` §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagCode {
    /// A value is read or written away from its Def. 1 locality.
    L001,
    /// A payload slot is consumed before any path gathered it.
    D002,
    /// A same-epoch write race on a `(map, locality class)`.
    R003,
    /// A modification re-enables its own action with no merged guard.
    T004,
    /// The action or its plan is structurally malformed.
    S005,
    /// A place is used as a locality without its resolving read declared.
    P006,
}

impl DiagCode {
    /// The stable code string, e.g. `"L001"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            DiagCode::L001 => "L001",
            DiagCode::D002 => "D002",
            DiagCode::R003 => "R003",
            DiagCode::T004 => "T004",
            DiagCode::S005 => "S005",
            DiagCode::P006 => "P006",
        }
    }

    /// Short human name of the condition the code flags.
    pub fn title(&self) -> &'static str {
        match self {
            DiagCode::L001 => "NonLocalRead",
            DiagCode::D002 => "UseBeforeGather",
            DiagCode::R003 => "EpochWriteRace",
            DiagCode::T004 => "UnguardedSelfTrigger",
            DiagCode::S005 => "MalformedAction",
            DiagCode::P006 => "UnresolvedPlace",
        }
    }
}

impl std::fmt::Display for DiagCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One verifier finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code (`L001`, `D002`, ...).
    pub code: DiagCode,
    /// Error (rejected at build) or warning (reported, allowed).
    pub severity: Severity,
    /// Name of the action the finding is about.
    pub action: String,
    /// The locality the finding anchors to, when one exists.
    pub place: Option<Place>,
    /// The plan step (index into [`ExecPlan::steps`]) the finding anchors
    /// to, for plan-level findings.
    pub step: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    fn new(
        code: DiagCode,
        severity: Severity,
        action: &str,
        place: Option<Place>,
        step: Option<usize>,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            action: action.to_string(),
            place,
            step,
            message,
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{} {}] {}: {}",
            self.severity,
            self.code,
            self.code.title(),
            self.action,
            self.message
        )?;
        if let Some(p) = &self.place {
            write!(f, " (at {p})")?;
        }
        if let Some(s) = self.step {
            write!(f, " (step {s})")?;
        }
        Ok(())
    }
}

/// The verifier's findings for an action or a whole pattern.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, errors first.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Whether any finding is error-severity.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Whether the verifier found nothing at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings carrying the given code.
    pub fn with_code(&self, code: DiagCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    fn push_dedup(&mut self, d: Diagnostic) {
        if !self.diagnostics.contains(&d) {
            self.diagnostics.push(d);
        }
    }

    fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| b.severity.cmp(&a.severity).then(a.action.cmp(&b.action)));
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "verification clean");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Verify one action against one compiled plan: the plan walk (L001 +
/// D002) plus the IR-level race and self-trigger analyses (R003, T004).
pub fn verify_action(ir: &ActionIr, plan: &ExecPlan) -> Vec<Diagnostic> {
    let mut out = walk_plan(ir, plan);
    out.extend(races_in_action(ir, plan));
    out.extend(self_trigger(ir, plan));
    out
}

/// Verify an action from its IR alone: validates the structure (`S005`),
/// compiles *both* plan modes (`P006` on failure), and runs
/// [`verify_action`] on each, deduplicating mode-independent findings.
/// This is what [`crate::builder::ActionBuilder::build`] runs.
pub fn verify_ir(ir: &ActionIr) -> Report {
    let mut report = Report::default();
    if let Err(e) = ir.validate() {
        report.push_dedup(Diagnostic::new(
            DiagCode::S005,
            Severity::Error,
            &ir.name,
            None,
            None,
            e,
        ));
        return report;
    }
    for d in unresolved_places(ir) {
        report.push_dedup(d);
    }
    if ir.slots.len() > crate::engine::MAX_SLOTS {
        report.push_dedup(Diagnostic::new(
            DiagCode::S005,
            Severity::Error,
            &ir.name,
            None,
            None,
            format!(
                "declares {} reads; the engine supports at most {}",
                ir.slots.len(),
                crate::engine::MAX_SLOTS
            ),
        ));
    }
    for mode in [PlanMode::Faithful, PlanMode::Optimized] {
        match compile(ir, mode) {
            Ok(plan) => {
                for d in verify_action(ir, &plan) {
                    report.push_dedup(d);
                }
            }
            Err(e) if e.diagnostics.is_empty() => report.push_dedup(Diagnostic::new(
                DiagCode::P006,
                Severity::Error,
                &ir.name,
                None,
                None,
                format!("plan synthesis ({mode:?}) failed: {e}"),
            )),
            // The planner now fails with the structured findings of the
            // always-on soundness pass: surface them directly.
            Err(e) => {
                for d in e.diagnostics {
                    report.push_dedup(d);
                }
            }
        }
    }
    report.sort();
    report
}

/// Verify a whole pattern: every action individually, plus the
/// cross-action write/write conflict check of §III-C (two actions of one
/// pattern share the epoch and the property maps).
pub fn verify_pattern(actions: &[&ActionIr]) -> Report {
    let mut report = Report::default();
    let mut sites: Vec<WriteSite> = Vec::new();
    for ir in actions {
        for d in verify_ir(ir).diagnostics {
            report.push_dedup(d);
        }
        if ir.validate().is_ok() {
            if let Ok(plan) = compile(ir, PlanMode::Optimized) {
                sites.extend(write_sites(ir, &plan));
            }
        }
    }
    for d in cross_site_races(&sites, true) {
        report.push_dedup(d);
    }
    report.sort();
    report
}

/// Re-check a plan against its action (the `plan::soundness` pass:
/// L001/D002/S005/P006) and return the first error, if any. The same
/// analysis runs unconditionally — release builds included — at the end
/// of every [`crate::plan::compile`]: the planner's *output* must always
/// be locality- and def-use-sound, whatever races the pattern itself has.
pub fn check_plan(ir: &ActionIr, plan: &ExecPlan) -> Option<Diagnostic> {
    walk_plan(ir, plan)
        .into_iter()
        .find(|d| d.severity == Severity::Error)
}

/// Every `p[x]` used as a locality — in a read's place or a modification
/// target — needs the read of `p` at `x` declared as a slot, or neither
/// the planner nor the engine can resolve the vertex it names (`P006`).
fn unresolved_places(ir: &ActionIr) -> Vec<Diagnostic> {
    fn check(ir: &ActionIr, p: &Place, what: &str, out: &mut Vec<Diagnostic>) {
        let mut cur = p;
        while let Place::MapAt(m, inner) = cur {
            let declared = ir.slots.iter().any(
                |r| matches!(r, ReadRef::VertexProp { map, at } if map == m && at == &**inner),
            );
            if !declared {
                let d = Diagnostic::new(
                    DiagCode::P006,
                    Severity::Error,
                    &ir.name,
                    Some(p.clone()),
                    None,
                    format!(
                        "{what} uses p{m}[{inner}] as a locality, but the read resolving \
                         it is not declared as a slot"
                    ),
                );
                if !out.contains(&d) {
                    out.push(d);
                }
            }
            cur = inner;
        }
    }
    let mut out = Vec::new();
    for r in &ir.slots {
        if let ReadRef::VertexProp { at, .. } = r {
            check(ir, at, "a declared read", &mut out);
        }
    }
    for c in &ir.conditions {
        for m in &c.mods {
            check(ir, &m.at, "a modification", &mut out);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Analysis 1 + 2: locality soundness and def-use. The historical
// exponential path enumeration over (pc, place, filled-set) was replaced
// by the path-sensitive fixpoint of `plan::soundness` (a per-slot must/
// may lattice joined at merge points); this wrapper keeps the verifier's
// entry points stable.
// ---------------------------------------------------------------------

fn walk_plan(ir: &ActionIr, plan: &ExecPlan) -> Vec<Diagnostic> {
    crate::plan::soundness::analyze(ir, plan).diagnostics
}

// ---------------------------------------------------------------------
// Analysis 3: epoch write races (§III-C).
// ---------------------------------------------------------------------

/// Two places may name the same vertex within an epoch's instances: they
/// are the same locality *class* when equal, or when both are pointer
/// dereferences through the same outermost map (two `pnt[..]` reads can
/// land on one root).
fn may_alias(p: &Place, q: &Place) -> bool {
    if p == q {
        return true;
    }
    matches!((p, q), (Place::MapAt(a, _), Place::MapAt(b, _)) if a == b)
}

/// One static assignment site, with whether the merged-modification
/// guarantee protects it (the CAS shape: applied inside the merged
/// evaluate-and-modify step whose test reads the written value at the
/// written place).
#[derive(Debug, Clone)]
struct WriteSite {
    action: String,
    cond: usize,
    group: usize,
    map: u32,
    at: Place,
    protected: bool,
}

/// The modification-group index of each modification of `cond` (the
/// planner groups consecutive mods by target locality; group 0 is the one
/// merging candidates come from).
fn group_of(ir: &ActionIr, ci: usize) -> Vec<usize> {
    let mods = &ir.conditions[ci].mods;
    let mut groups = Vec::with_capacity(mods.len());
    let mut g = 0usize;
    for (mi, m) in mods.iter().enumerate() {
        if mi > 0 && m.at != mods[mi - 1].at {
            g += 1;
        }
        groups.push(g);
    }
    groups
}

fn test_reads_exactly(ir: &ActionIr, ci: usize, map: u32, at: &Place) -> bool {
    ir.conditions[ci].reads.iter().any(|&Slot(s)| {
        matches!(&ir.slots[s], ReadRef::VertexProp { map: m, at: a } if *m == map && a == at)
    })
}

/// All `Assign` sites of the action with their protection status.
fn write_sites(ir: &ActionIr, plan: &ExecPlan) -> Vec<WriteSite> {
    let mut out = Vec::new();
    for (ci, c) in ir.conditions.iter().enumerate() {
        let groups = group_of(ir, ci);
        for (mi, m) in c.mods.iter().enumerate() {
            if m.kind != ModKind::Assign {
                continue;
            }
            let merged = plan.merged.get(ci).copied().unwrap_or(false) && groups[mi] == 0;
            out.push(WriteSite {
                action: ir.name.clone(),
                cond: ci,
                group: groups[mi],
                map: m.map,
                at: m.at.clone(),
                protected: merged && test_reads_exactly(ir, ci, m.map, &m.at),
            });
        }
    }
    out
}

/// Stale-guard (check-then-act) races within one action: the condition
/// test reads the map an assignment writes, at an aliasing place, and the
/// assignment is not applied inside the merged evaluate-and-modify step —
/// so by the time the write lands, the guard's value may be stale.
fn races_in_action(ir: &ActionIr, plan: &ExecPlan) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (ci, c) in ir.conditions.iter().enumerate() {
        let groups = group_of(ir, ci);
        for (mi, m) in c.mods.iter().enumerate() {
            if m.kind != ModKind::Assign {
                continue; // insertions are commutative reductions
            }
            let in_merged = plan.merged.get(ci).copied().unwrap_or(false) && groups[mi] == 0;
            for &Slot(s) in &c.reads {
                let ReadRef::VertexProp { map, at } = &ir.slots[s] else {
                    continue;
                };
                if *map != m.map || !may_alias(at, &m.at) {
                    continue;
                }
                // The merged step synchronizes test and write only for the
                // value it re-reads fresh at the modified vertex itself.
                let protected = in_merged && *at == m.at;
                if !protected {
                    out.push(Diagnostic::new(
                        DiagCode::R003,
                        Severity::Error,
                        &ir.name,
                        Some(m.at.clone()),
                        None,
                        format!(
                            "condition {ci} tests p{map}[{at}] but assigns p{}[{}] outside \
                             the merged evaluate-and-modify step; the guard may be stale \
                             when the write lands (§III-C)",
                            m.map, m.at
                        ),
                    ));
                }
            }
        }
    }
    // Write/write conflicts between this action's own sites (two firing
    // instances of different conditions, or of different groups of one
    // condition, may interleave).
    out.extend(cross_site_races(&write_sites(ir, plan), false));
    out
}

/// Write/write conflict warnings between distinct static assignment
/// sites aliasing on the same map. With `cross_actions_only`, only pairs
/// from different actions are reported (the per-action pass already
/// covered the rest).
fn cross_site_races(sites: &[WriteSite], cross_actions_only: bool) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = Vec::new();
    for (i, a) in sites.iter().enumerate() {
        for b in &sites[i + 1..] {
            let same_action = a.action == b.action;
            if cross_actions_only && same_action {
                continue;
            }
            if !cross_actions_only && !same_action {
                continue;
            }
            // Mods of one group apply in order under one lock: not a race.
            if same_action && a.cond == b.cond && a.group == b.group {
                continue;
            }
            if a.map != b.map || !may_alias(&a.at, &b.at) {
                continue;
            }
            if a.protected && b.protected {
                continue; // both are guarded read-modify-writes
            }
            let d = Diagnostic::new(
                DiagCode::R003,
                Severity::Warning,
                &a.action,
                Some(a.at.clone()),
                None,
                if same_action {
                    format!(
                        "conditions {} and {} both assign p{} in the same locality class \
                         and at least one is not a guarded read-modify-write; concurrent \
                         instances race last-writer-wins",
                        a.cond, b.cond, a.map
                    )
                } else {
                    format!(
                        "assigns p{} at {} while action {:?} assigns it at {} in the same \
                         epoch and at least one is not a guarded read-modify-write",
                        a.map, a.at, b.action, b.at
                    )
                },
            );
            if !out.contains(&d) {
                out.push(d);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Analysis 4: self-trigger lint.
// ---------------------------------------------------------------------

/// A modification whose map the action also reads re-enables the action
/// (§III-C's dependency rule creates a work item). Without the merged
/// guard reading the written value at the written place, nothing makes
/// the value strictly decrease, so `fixed_point` driving may never
/// terminate; warn. (The betweenness phase patterns trip this truthfully:
/// they accumulate and must be driven level-by-level with `once`.)
fn self_trigger(ir: &ActionIr, plan: &ExecPlan) -> Vec<Diagnostic> {
    let dep = ir.dependency_matrix();
    let mut out = Vec::new();
    for (ci, c) in ir.conditions.iter().enumerate() {
        let groups = group_of(ir, ci);
        for (mi, m) in c.mods.iter().enumerate() {
            if !dep[ci][mi] || m.kind != ModKind::Assign {
                continue; // no work item, or a saturating reduction
            }
            let in_merged = plan.merged.get(ci).copied().unwrap_or(false) && groups[mi] == 0;
            let guarded = in_merged && test_reads_exactly(ir, ci, m.map, &m.at);
            if !guarded {
                out.push(Diagnostic::new(
                    DiagCode::T004,
                    Severity::Warning,
                    &ir.name,
                    Some(m.at.clone()),
                    None,
                    format!(
                        "condition {ci} assigns p{} which the action also reads: the \
                         dependency rule re-triggers the action, and no merged guard \
                         reads p{}[{}] — ensure a strictly-decreasing guard or drive \
                         with level-synchronized `once`",
                        m.map, m.map, m.at
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ConditionIr, GeneratorIr, ModificationIr};
    use crate::plan::ExecStep;

    fn relax_ir() -> ActionIr {
        let (dist, weight) = (0, 1);
        ActionIr {
            name: "relax".into(),
            generator: GeneratorIr::OutEdges,
            slots: vec![
                ReadRef::VertexProp {
                    map: dist,
                    at: Place::GenTrg,
                },
                ReadRef::VertexProp {
                    map: dist,
                    at: Place::Input,
                },
                ReadRef::EdgeProp { map: weight },
            ],
            conditions: vec![ConditionIr {
                reads: vec![Slot(0), Slot(1), Slot(2)],
                mods: vec![ModificationIr {
                    map: dist,
                    at: Place::GenTrg,
                    reads: vec![Slot(1), Slot(2)],
                    kind: ModKind::Assign,
                }],
                is_else: false,
            }],
        }
    }

    #[test]
    fn relax_is_clean() {
        let report = verify_ir(&relax_ir());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn codes_render_stably() {
        assert_eq!(DiagCode::L001.as_str(), "L001");
        assert_eq!(DiagCode::L001.title(), "NonLocalRead");
        assert_eq!(DiagCode::R003.to_string(), "R003");
        let d = Diagnostic::new(
            DiagCode::D002,
            Severity::Error,
            "a",
            Some(Place::Input),
            Some(3),
            "m".into(),
        );
        let text = d.to_string();
        assert!(
            text.starts_with("error[D002 UseBeforeGather] a: m"),
            "{text}"
        );
        assert!(text.contains("(step 3)"), "{text}");
    }

    #[test]
    fn tampered_gather_place_is_l001() {
        let ir = relax_ir();
        let mut plan = compile(&ir, PlanMode::Optimized).unwrap();
        // Gather the GenTrg-local slot 0 at the Input stop (where slots 1
        // and 2 are picked up): an owner-only violation.
        for step in &mut plan.steps {
            if let ExecStep::Gather { slots, .. } = step {
                if slots.contains(&1) && !slots.contains(&0) {
                    slots.push(0);
                }
            }
        }
        let diags = walk_plan(&ir, &plan);
        assert!(diags.iter().any(|d| d.code == DiagCode::L001), "{diags:?}");
    }

    #[test]
    fn dropped_gather_is_d002() {
        let ir = relax_ir();
        let mut plan = compile(&ir, PlanMode::Optimized).unwrap();
        for step in &mut plan.steps {
            if let ExecStep::Gather { slots, .. } = step {
                slots.retain(|&s| s != 1);
            }
        }
        let diags = walk_plan(&ir, &plan);
        assert!(diags.iter().any(|d| d.code == DiagCode::D002), "{diags:?}");
    }

    #[test]
    fn unmerged_guarded_write_is_r003() {
        // Force the modification out of the merged group by making its
        // right-hand side read a locality the test does not access: the
        // write then lands after the guard was evaluated — check-then-act.
        let mut ir = relax_ir();
        ir.slots.push(ReadRef::VertexProp {
            map: 0,
            at: Place::GenSrc,
        });
        ir.conditions[0].mods[0].reads.push(Slot(3));
        let report = verify_ir(&ir);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == DiagCode::R003 && d.severity == Severity::Error),
            "{report}"
        );
    }

    #[test]
    fn unguarded_self_trigger_is_t004() {
        // Drop the guard's read of the written value: still merged (the
        // remaining reads are a subset of the test localities), but
        // nothing makes dist[trg] strictly decrease.
        let mut ir = relax_ir();
        ir.conditions[0].reads = vec![Slot(1), Slot(2)];
        let report = verify_ir(&ir);
        assert!(
            report.diagnostics.iter().any(|d| d.code == DiagCode::T004),
            "{report}"
        );
        assert!(!report.has_errors(), "{report}");
    }

    #[test]
    fn malformed_action_is_s005() {
        let mut ir = relax_ir();
        ir.conditions.clear();
        let report = verify_ir(&ir);
        assert!(
            report.diagnostics.iter().any(|d| d.code == DiagCode::S005),
            "{report}"
        );
    }

    #[test]
    fn unresolved_place_is_p006() {
        // A pointer locality whose resolving read is not declared.
        let mut ir = relax_ir();
        ir.conditions[0].mods[0].at = Place::map_at(7, Place::Input);
        let report = verify_ir(&ir);
        assert!(
            report.diagnostics.iter().any(|d| d.code == DiagCode::P006),
            "{report}"
        );
    }

    #[test]
    fn insert_reductions_are_exempt_from_races() {
        let mut ir = relax_ir();
        ir.conditions[0].mods[0].kind = ModKind::Insert;
        let plan = compile(&ir, PlanMode::Optimized).unwrap();
        assert!(races_in_action(&ir, &plan).is_empty());
    }

    #[test]
    fn cross_action_write_write_is_reported() {
        let a = relax_ir();
        let mut b = relax_ir();
        b.name = "relax2".into();
        // Break b's CAS shape so the pair is not both-protected.
        b.conditions[0].reads = vec![Slot(1), Slot(2)];
        let report = verify_pattern(&[&a, &b]);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == DiagCode::R003 && d.severity == Severity::Warning),
            "{report}"
        );
    }

    #[test]
    fn alias_classes_follow_pointer_maps() {
        assert!(may_alias(&Place::Input, &Place::Input));
        assert!(!may_alias(&Place::Input, &Place::GenTrg));
        let p = Place::map_at(3, Place::Input);
        let q = Place::map_at(3, Place::GenTrg);
        let r = Place::map_at(4, Place::Input);
        assert!(may_alias(&p, &q));
        assert!(!may_alias(&p, &r));
    }
}

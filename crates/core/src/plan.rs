//! The communication planner (§IV-A): from an analyzed action to the
//! message program that executes it.
//!
//! For every condition the paper's procedure is followed:
//!
//! 1. the required localities are found from the property-map accesses;
//! 2. the depth-first communication tree is pruned of edges not on a path
//!    to a required locality ([`crate::depgraph::DepTree`]);
//! 3. gather messages are constructed by traversing the pruned tree,
//!    each message's payload extending the previous one;
//! 4. the final evaluate message is constructed;
//! 5. **merging**: modification statements are grouped by the locality of
//!    the modified values (without reordering); when the first group only
//!    accesses values at a subset of the condition's localities, the group
//!    is merged into the condition — the final message both evaluates the
//!    condition and performs the modifications at the modified value's
//!    locality, which "is not a mere optimization" but what enables the
//!    read/write synchronization guarantee of §III-C;
//! 6. **elision**: values already carried in the payload are not
//!    re-gathered for later conditions and modification groups.
//!
//! Subexpression precomputation (Fig. 6's `dist[v] + weight[e]` computed at
//! `v`) falls out of the closure embedding: gathered slot values *are* the
//! operands carried in the payload, and the condition/modification closures
//! combine them at the evaluation site.
//!
//! The output is an [`ExecPlan`] — a small branching program over
//! [`ExecStep`]s interpreted by the engine, where every [`ExecStep::Goto`]
//! between distinct vertices is one message — plus a [`CommPlan`] summary
//! used by the figure-reproduction experiments.

pub mod soundness;

use std::collections::HashSet;

use crate::depgraph::DepTree;
use crate::ir::{ActionIr, Place, ReadRef, Slot};
use crate::verify::{DiagCode, Diagnostic, Severity};

pub use soundness::VerifiedFacts;

/// Structured failure of [`compile`] (or of the always-on soundness pass
/// it ends with): the stable diagnostics of [`crate::verify`], not a
/// string. Converts into `String` for callers that still thread stringly
/// errors (`impl From<PlanError> for String`).
#[derive(Debug, Clone)]
pub struct PlanError {
    /// Name of the action that failed to compile.
    pub action: String,
    /// The findings, in deterministic order.
    pub diagnostics: Vec<Diagnostic>,
    /// The rendered plan when a *synthesized* plan failed verification
    /// (an internal planner bug); `None` for synthesis-stage rejections.
    pub plan: Option<String>,
}

impl PlanError {
    fn synthesis(action: &str, code: DiagCode, message: String) -> PlanError {
        PlanError {
            action: action.to_string(),
            diagnostics: vec![Diagnostic {
                code,
                severity: Severity::Error,
                action: action.to_string(),
                place: None,
                step: None,
                message,
            }],
            plan: None,
        }
    }

    /// Whether any finding carries the given code.
    pub fn has_code(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        if let Some(p) = &self.plan {
            write!(f, "\n{p}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PlanError {}

impl From<PlanError> for String {
    fn from(e: PlanError) -> String {
        e.to_string()
    }
}

/// Gather-traversal flavor (§IV-A's presentation vs. noted optimization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Depth-first traversal with explicit returns to the parent between
    /// sibling subtrees — the algorithm as presented in the paper.
    Faithful,
    /// Jump straight to the next required locality (the paper's dashed
    /// line in Fig. 5: "this is indeed what we would do in practice").
    #[default]
    Optimized,
}

/// One step of the compiled message program.
#[derive(Debug, Clone)]
pub enum ExecStep {
    /// Move to the vertex named by `places[to]`; one message when it is a
    /// different vertex than the current one.
    Goto {
        /// Index into [`ExecPlan::places`].
        to: usize,
        /// Step to execute on arrival.
        next: usize,
    },
    /// Read the given slots here (their localities all resolve to the
    /// current vertex).
    Gather {
        /// Payload slots to fill.
        slots: Vec<usize>,
        /// Next step.
        next: usize,
    },
    /// Evaluate condition `cond` here after freshly reading `local_slots`.
    Eval {
        /// Condition index.
        cond: usize,
        /// Slots re-read at this vertex before testing.
        local_slots: Vec<usize>,
        /// Step when the test fires.
        on_true: usize,
        /// Step when it does not.
        on_false: usize,
    },
    /// Merged evaluate-and-modify (§IV-A): under the vertex's
    /// synchronization, freshly read `local_slots`, evaluate condition
    /// `cond`, and if true apply modifications `mods` (indices into the
    /// condition's modification list) — all at the current vertex.
    EvalModify {
        /// Condition index.
        cond: usize,
        /// Slots re-read fresh under the synchronization.
        local_slots: Vec<usize>,
        /// Indices into the condition's modification list.
        mods: Vec<usize>,
        /// Step when the test fires (after the modifications).
        on_true: usize,
        /// Step when it does not.
        on_false: usize,
    },
    /// Apply a (non-first or unmerged) modification group here, freshly
    /// reading `local_slots` (reads co-located with the modified values)
    /// under the group's synchronization.
    ModifyGroup {
        /// Condition index.
        cond: usize,
        /// Slots re-read fresh under the group's lock.
        local_slots: Vec<usize>,
        /// Indices into the condition's modification list.
        mods: Vec<usize>,
        /// Next step.
        next: usize,
    },
    /// Action instance complete.
    End,
}

/// The compiled message program of one action.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    /// The traversal flavor this plan was compiled with.
    pub mode: PlanMode,
    /// Interned places; `Goto::to` indexes this.
    pub places: Vec<Place>,
    /// The step program; execution starts at step 0.
    pub steps: Vec<ExecStep>,
    /// Entry step of each condition.
    pub cond_entries: Vec<usize>,
    /// Whether each condition was merged with its first modification group.
    pub merged: Vec<bool>,
    /// The proof attached by the always-on soundness pass: present on
    /// every plan [`compile`] returns. `VerifiedFacts` is a sealed
    /// capability (only [`soundness::analyze`] constructs it), so a
    /// hand-mutated plan cannot carry one — the engine checks this field
    /// before eliding its per-message runtime guards.
    pub facts: Option<soundness::VerifiedFacts>,
}

/// Static communication summary of a plan (the unit of the paper's Figs.
/// 5–6).
#[derive(Debug, Clone)]
pub struct CommPlan {
    /// The traversal flavor of the underlying plan.
    pub mode: PlanMode,
    /// Structural messages, assuming all distinct places are distinct
    /// vertices (the paper's counting model).
    pub messages: usize,
    /// The hops, as (from, to) places.
    pub hops: Vec<(Place, Place)>,
}

// ---------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum Target {
    Step(usize),
    CondEntry(usize),
    End,
}

struct Compiler<'a> {
    ir: &'a ActionIr,
    mode: PlanMode,
    places: Vec<Place>,
    steps: Vec<RawStep>,
    /// Slots available at the condition currently being compiled (set by
    /// the driver from `have_always`/`have_chain` below).
    have: HashSet<usize>,
}

#[derive(Debug, Clone)]
enum RawStep {
    Goto {
        to: usize,
        next: Target,
    },
    Gather {
        slots: Vec<usize>,
        next: Target,
    },
    Eval {
        cond: usize,
        local_slots: Vec<usize>,
        on_true: Target,
        on_false: Target,
    },
    EvalModify {
        cond: usize,
        local_slots: Vec<usize>,
        mods: Vec<usize>,
        on_true: Target,
        on_false: Target,
    },
    ModifyGroup {
        cond: usize,
        local_slots: Vec<usize>,
        mods: Vec<usize>,
        next: Target,
    },
    End,
}

/// Compile an action to its message program.
///
/// Every returned plan has passed the path-sensitive soundness pass
/// ([`soundness::analyze`]) — in release builds too — and carries its
/// [`VerifiedFacts`] proof in [`ExecPlan::facts`].
pub fn compile(ir: &ActionIr, mode: PlanMode) -> Result<ExecPlan, PlanError> {
    ir.validate()
        .map_err(|e| PlanError::synthesis(&ir.name, DiagCode::S005, e))?;
    let mut c = Compiler {
        ir,
        mode,
        places: vec![Place::Input],
        steps: Vec::new(),
        have: HashSet::new(),
    };
    let ncond = ir.conditions.len();
    let mut entries = Vec::with_capacity(ncond);
    let mut merged_flags = Vec::with_capacity(ncond);
    // Gather elision must respect control flow: a non-`else` condition is
    // reached on *every* path (both branches of each predecessor converge
    // on it), so its gathers are available to everything after it. An
    // `else` condition is skipped whenever its chain head fired, so its
    // gathers may only be credited to later conditions of the same chain.
    let mut have_always: HashSet<usize> = HashSet::new();
    let mut have_chain: HashSet<usize> = HashSet::new();
    for ci in 0..ncond {
        entries.push(c.steps.len());
        c.have = if ir.conditions[ci].is_else {
            have_chain.clone()
        } else {
            have_always.clone()
        };
        let (merged, need) = c
            .compile_condition(ci)
            .map_err(|e| PlanError::synthesis(&ir.name, DiagCode::P006, e))?;
        merged_flags.push(merged);
        if ir.conditions[ci].is_else {
            have_chain.extend(need);
        } else {
            have_always.extend(need);
            have_chain = have_always.clone();
        }
    }
    let end_pc = c.steps.len();
    c.steps.push(RawStep::End);

    // Resolve symbolic targets.
    let resolve = |t: Target| -> usize {
        match t {
            Target::Step(s) => s,
            Target::CondEntry(ci) => {
                if ci < ncond {
                    entries[ci]
                } else {
                    end_pc
                }
            }
            Target::End => end_pc,
        }
    };
    let steps = c
        .steps
        .iter()
        .map(|s| match s {
            RawStep::Goto { to, next } => ExecStep::Goto {
                to: *to,
                next: resolve(*next),
            },
            RawStep::Gather { slots, next } => ExecStep::Gather {
                slots: slots.clone(),
                next: resolve(*next),
            },
            RawStep::Eval {
                cond,
                local_slots,
                on_true,
                on_false,
            } => ExecStep::Eval {
                cond: *cond,
                local_slots: local_slots.clone(),
                on_true: resolve(*on_true),
                on_false: resolve(*on_false),
            },
            RawStep::EvalModify {
                cond,
                local_slots,
                mods,
                on_true,
                on_false,
            } => ExecStep::EvalModify {
                cond: *cond,
                local_slots: local_slots.clone(),
                mods: mods.clone(),
                on_true: resolve(*on_true),
                on_false: resolve(*on_false),
            },
            RawStep::ModifyGroup {
                cond,
                local_slots,
                mods,
                next,
            } => ExecStep::ModifyGroup {
                cond: *cond,
                local_slots: local_slots.clone(),
                mods: mods.clone(),
                next: resolve(*next),
            },
            RawStep::End => ExecStep::End,
        })
        .collect();

    let mut plan = ExecPlan {
        mode,
        places: c.places,
        steps,
        cond_entries: entries,
        merged: merged_flags,
        facts: None,
    };
    // The planner's output is re-checked by the path-sensitive abstract
    // interpreter on *every* compile, release builds included: a compiler
    // bug must fail at registration, not as a wrong answer at runtime.
    // A clean pass attaches the proof the engine's guard elision keys on.
    let analysis = soundness::analyze(ir, &plan);
    if analysis.has_errors() {
        return Err(PlanError {
            action: ir.name.clone(),
            diagnostics: analysis.diagnostics,
            plan: Some(plan.to_string()),
        });
    }
    plan.facts = analysis.facts;
    Ok(plan)
}

impl<'a> Compiler<'a> {
    fn place_idx(&mut self, p: &Place) -> usize {
        if let Some(i) = self.places.iter().position(|q| q == p) {
            i
        } else {
            self.places.push(p.clone());
            self.places.len() - 1
        }
    }

    /// Slot holding the read that resolves `MapAt(map, inner)`.
    fn resolution_slot(&self, map: u32, inner: &Place) -> Result<usize, String> {
        self.ir
            .slots
            .iter()
            .position(|r| matches!(r, ReadRef::VertexProp { map: m, at } if *m == map && at == inner))
            .ok_or_else(|| {
                format!(
                    "action {:?}: place map {}[{:?}] used as a locality, but its value is not declared as a read",
                    self.ir.name, map, inner
                )
            })
    }

    /// All slots that must be gathered to *resolve* the identity of `p`
    /// (the pointer reads along its `MapAt` chain), outermost last.
    fn resolution_chain(&self, p: &Place) -> Result<Vec<(usize, Place)>, String> {
        let mut out = Vec::new();
        let mut cur = p.clone();
        while let Place::MapAt(m, inner) = cur {
            let slot = self.resolution_slot(m, &inner)?;
            out.push((slot, (*inner).clone()));
            cur = *inner;
        }
        out.reverse();
        Ok(out)
    }

    /// Gather-tour for `slots_needed` (slot indices), returning
    /// `(ordered stops, gathers per stop)`. Stops exclude `Place::Input`
    /// (reads local to the current start are handled by the caller) and
    /// `skip` (the eval site, gathered fresh there).
    #[allow(clippy::type_complexity)]
    fn build_tour(
        &mut self,
        slots_needed: &[usize],
        skip: Option<&Place>,
    ) -> Result<Vec<(Place, Vec<usize>)>, String> {
        // Work out every locality to visit, including pointer-resolution
        // stops, and which slots to pick up where.
        let mut gathers: Vec<(Place, Vec<usize>)> = Vec::new();
        let mut add = |loc: Place, slot: usize| {
            if let Some(e) = gathers.iter_mut().find(|(p, _)| *p == loc) {
                if !e.1.contains(&slot) {
                    e.1.push(slot);
                }
            } else {
                gathers.push((loc, vec![slot]));
            }
        };
        for &s in slots_needed {
            let loc = self.ir.slots[s].locality();
            for (rs, rloc) in self.resolution_chain(&loc)? {
                if !self.have.contains(&rs) {
                    add(rloc, rs);
                }
            }
            add(loc, s);
        }
        // The tree orders stops dependency-first; Input-local and
        // eval-site-local gathers are pulled out by the caller.
        let locs: Vec<Place> = gathers.iter().map(|(p, _)| p.clone()).collect();
        let tree = DepTree::build(&locs);
        let order: Vec<Place> = match self.mode {
            PlanMode::Optimized => tree
                .optimized_order()
                .iter()
                .map(|&i| tree.nodes[i].clone())
                .collect(),
            PlanMode::Faithful => {
                // Every move is a stop (messages through intermediate
                // localities), gathering there if anything is pending.
                let mut seen = Vec::new();
                for mv in tree.faithful_walk() {
                    let p = tree.nodes[mv.to()].clone();
                    seen.push(p);
                }
                seen
            }
        };
        let mut tour = Vec::new();
        for p in order {
            if p == Place::Input || Some(&p) == skip {
                // Input handled at entry; skip handled at eval.
                if p == Place::Input {
                    tour.push((Place::Input, Vec::new()));
                }
                continue;
            }
            let slots = gathers
                .iter()
                .find(|(q, _)| *q == p)
                .map(|(_, s)| s.clone())
                .unwrap_or_default();
            tour.push((p, slots));
        }
        Ok(tour)
    }

    /// Compile condition `ci`; returns whether it was merged with its
    /// first modification group, plus the slots its evaluation gathered
    /// (for the driver's availability tracking).
    fn compile_condition(&mut self, ci: usize) -> Result<(bool, Vec<usize>), String> {
        let cond = self.ir.conditions[ci].clone();

        // Group consecutive modifications by the locality they modify
        // ("the modifications are not reordered, so if modifications of
        // values at different localities are interleaved, they will not be
        // grouped").
        let mut groups: Vec<(Place, Vec<usize>)> = Vec::new();
        for (mi, m) in cond.mods.iter().enumerate() {
            match groups.last_mut() {
                Some((at, idxs)) if *at == m.at => idxs.push(mi),
                _ => groups.push((m.at.clone(), vec![mi])),
            }
        }

        // Merging rule: the first group merges into the condition when the
        // group accesses values at a subset of the condition's localities.
        let test_locs: Vec<Place> = self.ir.condition_localities(ci);
        let merged = groups.first().is_some_and(|(_, idxs)| {
            idxs.iter().all(|&mi| {
                cond.mods[mi]
                    .reads
                    .iter()
                    .all(|&Slot(s)| test_locs.contains(&self.ir.slots[s].locality()))
            })
        });

        // Everything the evaluation needs in its payload.
        let mut need: Vec<usize> = cond.reads.iter().map(|&Slot(s)| s).collect();
        if merged {
            for &mi in &groups[0].1 {
                for &Slot(s) in &cond.mods[mi].reads {
                    if !need.contains(&s) {
                        need.push(s);
                    }
                }
            }
        }
        // A pointer-indirected modification target is resolved *from the
        // payload* when the plan hops there: every resolution read along
        // each group target's `MapAt` chain must ride in the payload even
        // when no condition consults it.
        for (at, _) in &groups {
            for (rs, _) in self.resolution_chain(at)? {
                if !need.contains(&rs) {
                    need.push(rs);
                }
            }
        }
        // The same holds for the *localities of the values themselves*: a
        // read at `p[x]` is reached by a hop routed through the payload
        // slot holding `p[x]`, so that resolving read must be gathered
        // even when no condition consults it. Without this, an Input-local
        // resolver that only backs a locality never lands in `missing`,
        // the entry gather skips it, and the plan resolves an unset slot
        // (the release-mode D002 miscompile of ROADMAP item 1). The index
        // loop also covers chains of slots appended by the blocks above.
        let mut i = 0;
        while i < need.len() {
            let loc = self.ir.slots[need[i]].locality();
            for (rs, _) in self.resolution_chain(&loc)? {
                if !need.contains(&rs) {
                    need.push(rs);
                }
            }
            i += 1;
        }
        let missing: Vec<usize> = need
            .iter()
            .copied()
            .filter(|s| !self.have.contains(s))
            .collect();

        // Evaluation site: the modified value's locality when merged,
        // otherwise the last gathered locality (or the input vertex).
        let eval_site: Place = if merged {
            groups[0].0.clone()
        } else {
            missing
                .iter()
                .map(|&s| self.ir.slots[s].locality())
                .rfind(|l| *l != Place::Input)
                .unwrap_or(Place::Input)
        };

        // Entry: pick up the input vertex's local reads, then tour the
        // remaining localities. When nothing is missing, the paper's
        // elision applies: "the next condition is evaluated right away if
        // all the necessary values are available" — no gather, and for a
        // non-merged condition not even a hop.
        if !missing.is_empty() {
            let input_slots: Vec<usize> = missing
                .iter()
                .copied()
                .filter(|&s| self.ir.slots[s].locality() == Place::Input)
                .collect();
            if !input_slots.is_empty() {
                let input_idx = self.place_idx(&Place::Input);
                self.push_goto(input_idx);
                self.push_seq(RawStep::Gather {
                    slots: input_slots,
                    next: Target::End, // patched by push_seq
                });
            }
            // Gather tour over the remaining localities.
            let remote_missing: Vec<usize> = missing
                .iter()
                .copied()
                .filter(|&s| self.ir.slots[s].locality() != Place::Input)
                .collect();
            let tour = self.build_tour(&remote_missing, Some(&eval_site))?;
            for (p, slots) in tour {
                let pi = self.place_idx(&p);
                self.push_goto(pi);
                if !slots.is_empty() {
                    self.push_seq(RawStep::Gather {
                        slots,
                        next: Target::End,
                    });
                }
            }
        }

        // Final hop to the evaluation site; read its local slots fresh.
        // A merged condition always moves to the modified value's locality
        // (that placement *is* the synchronization mechanism); an unmerged
        // condition with everything in its payload evaluates in place.
        let moves_to_eval_site = merged || !missing.is_empty();
        let local_slots: Vec<usize> = if moves_to_eval_site {
            need.iter()
                .copied()
                .filter(|&s| self.ir.slots[s].locality() == eval_site)
                .collect()
        } else {
            Vec::new() // evaluated in place from the carried payload
        };
        if moves_to_eval_site {
            let eval_idx = self.place_idx(&eval_site);
            self.push_goto(eval_idx);
        }

        // Where the branches go.
        let on_false = Target::CondEntry(ci + 1);
        let next_non_else = (ci + 1..self.ir.conditions.len())
            .find(|&j| !self.ir.conditions[j].is_else)
            .map(Target::CondEntry)
            .unwrap_or(Target::End);

        let eval_pc = self.steps.len();
        if merged {
            self.steps.push(RawStep::EvalModify {
                cond: ci,
                local_slots,
                mods: groups[0].1.clone(),
                on_true: Target::Step(eval_pc + 1), // continue to later groups
                on_false,
            });
        } else {
            self.steps.push(RawStep::Eval {
                cond: ci,
                local_slots,
                on_true: Target::Step(eval_pc + 1),
                on_false,
            });
        }

        // True path: apply the remaining groups, then proceed to the next
        // non-else condition.
        let remaining: Vec<(Place, Vec<usize>)> = if merged {
            groups[1..].to_vec()
        } else {
            groups.clone()
        };
        if remaining.is_empty() {
            // Everything applied in the merged step (or nothing to apply):
            // the Eval/EvalModify's on_true jumps straight onward.
            let jump = if cond.mods.is_empty() {
                // Pure test: both branches fall through to the next cond.
                Target::CondEntry(ci + 1)
            } else {
                next_non_else
            };
            match self.steps.last_mut().unwrap() {
                RawStep::Eval { on_true, .. } | RawStep::EvalModify { on_true, .. } => {
                    *on_true = jump;
                }
                _ => unreachable!(),
            }
        } else {
            for (gi, (at, mod_idxs)) in remaining.iter().enumerate() {
                // Gather anything this group's right-hand sides still need;
                // reads co-located with the modified values are instead
                // re-read fresh at the group site, under its lock (the
                // same consistency the merged step provides).
                let group_reads: Vec<usize> = mod_idxs
                    .iter()
                    .flat_map(|&mi| cond.mods[mi].reads.iter().map(|&Slot(s)| s))
                    .collect();
                let group_missing: Vec<usize> = group_reads
                    .iter()
                    .copied()
                    .filter(|s| {
                        !self.have.contains(s)
                            && !need.contains(s)
                            && self.ir.slots[*s].locality() != *at
                    })
                    .collect();
                let local_slots: Vec<usize> = group_reads
                    .iter()
                    .copied()
                    .filter(|&s| self.ir.slots[s].locality() == *at)
                    .collect();
                let tour = self.build_tour(&group_missing, Some(at))?;
                for (p, slots) in tour {
                    let pi = self.place_idx(&p);
                    self.push_goto(pi);
                    if !slots.is_empty() {
                        self.push_seq(RawStep::Gather {
                            slots,
                            next: Target::End,
                        });
                    }
                }
                let pi = self.place_idx(at);
                self.push_goto(pi);
                let next = if gi + 1 == remaining.len() {
                    next_non_else
                } else {
                    Target::Step(self.steps.len() + 1)
                };
                self.steps.push(RawStep::ModifyGroup {
                    cond: ci,
                    local_slots,
                    mods: mod_idxs.clone(),
                    next,
                });
            }
        }

        // Values gathered for this condition's evaluation were read before
        // its branch; the driver decides which later conditions may elide
        // them (the paper's gather elision, made control-flow-aware).
        Ok((merged, need))
    }

    /// Push a Goto falling through to the next step.
    fn push_goto(&mut self, to: usize) {
        let pc = self.steps.len();
        self.steps.push(RawStep::Goto {
            to,
            next: Target::Step(pc + 1),
        });
    }

    /// Push a step falling through to the next step.
    fn push_seq(&mut self, mut s: RawStep) {
        let pc = self.steps.len();
        if let RawStep::Gather { next, .. } = &mut s {
            *next = Target::Step(pc + 1);
        }
        self.steps.push(s);
    }
}

// ---------------------------------------------------------------------
// Static analysis
// ---------------------------------------------------------------------

/// Verify a compiled plan against its action: along *every* control-flow
/// path, no condition test or modification reads a payload slot before
/// some earlier step gathered it, every read and write executes at its
/// Def. 1 locality, and every pointer-indirected hop resolves from a
/// gathered slot. Delegates to the fixpoint of [`soundness::analyze`]
/// (`L001`/`D002`/`S005`/`P006`). [`compile`] runs the same pass
/// unconditionally; this entry point re-checks externally mutated plans
/// and backs the property-test suite.
pub fn verify(ir: &ActionIr, plan: &ExecPlan) -> Result<(), PlanError> {
    let analysis = soundness::analyze(ir, plan);
    if analysis.has_errors() {
        Err(PlanError {
            action: ir.name.clone(),
            diagnostics: analysis.diagnostics,
            plan: Some(plan.to_string()),
        })
    } else {
        Ok(())
    }
}

impl ExecPlan {
    /// Static message count and hop list under the paper's counting model:
    /// every `Goto` between distinct *places* is one message (distinct
    /// places are assumed to be distinct vertices). The walk follows the
    /// program from step 0 through condition chains, taking true branches
    /// through modification groups (the worst-case, fully-firing path).
    pub fn comm_plan(&self) -> CommPlan {
        let mut hops = Vec::new();
        let mut cur = Place::Input;
        let mut pc = 0usize;
        let mut visited = vec![false; self.steps.len()];
        loop {
            if pc >= self.steps.len() || visited[pc] {
                break;
            }
            visited[pc] = true;
            match &self.steps[pc] {
                ExecStep::Goto { to, next } => {
                    let dst = self.places[*to].clone();
                    if dst != cur {
                        hops.push((cur.clone(), dst.clone()));
                        cur = dst;
                    }
                    pc = *next;
                }
                ExecStep::Gather { next, .. } => pc = *next,
                ExecStep::Eval { on_true, .. } | ExecStep::EvalModify { on_true, .. } => {
                    pc = *on_true;
                }
                ExecStep::ModifyGroup { next, .. } => pc = *next,
                ExecStep::End => break,
            }
        }
        CommPlan {
            mode: self.mode,
            messages: hops.len(),
            hops,
        }
    }
}

impl std::fmt::Display for ExecPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "plan ({:?} mode):", self.mode)?;
        for (i, s) in self.steps.iter().enumerate() {
            let entry = self
                .cond_entries
                .iter()
                .position(|&e| e == i)
                .map(|ci| format!("  // condition {ci}"))
                .unwrap_or_default();
            match s {
                ExecStep::Goto { to, next } => {
                    writeln!(f, "{i:3}: goto {:?} -> {next}{entry}", self.places[*to])?
                }
                ExecStep::Gather { slots, next } => {
                    writeln!(f, "{i:3}: gather slots {slots:?} -> {next}{entry}")?
                }
                ExecStep::Eval {
                    cond,
                    local_slots,
                    on_true,
                    on_false,
                } => writeln!(
                    f,
                    "{i:3}: eval c{cond} (fresh {local_slots:?}) ? {on_true} : {on_false}{entry}"
                )?,
                ExecStep::EvalModify {
                    cond,
                    local_slots,
                    mods,
                    on_true,
                    on_false,
                } => writeln!(
                    f,
                    "{i:3}: eval+modify c{cond} mods {mods:?} (fresh {local_slots:?}) ? {on_true} : {on_false}{entry}"
                )?,
                ExecStep::ModifyGroup {
                    cond,
                    local_slots,
                    mods,
                    next,
                } => writeln!(
                    f,
                    "{i:3}: modify c{cond} mods {mods:?} (fresh {local_slots:?}) -> {next}{entry}"
                )?,
                ExecStep::End => writeln!(f, "{i:3}: end{entry}")?,
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for CommPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} message(s) in {:?} mode:", self.messages, self.mode)?;
        for (from, to) in &self.hops {
            writeln!(f, "  {from:?} -> {to:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ConditionIr, GeneratorIr, MapId, ModKind, ModificationIr};

    const DIST: MapId = 0;
    const WEIGHT: MapId = 1;

    fn sssp_ir() -> ActionIr {
        ActionIr {
            name: "relax".into(),
            generator: GeneratorIr::OutEdges,
            slots: vec![
                ReadRef::VertexProp {
                    map: DIST,
                    at: Place::GenTrg,
                },
                ReadRef::VertexProp {
                    map: DIST,
                    at: Place::Input,
                },
                ReadRef::EdgeProp { map: WEIGHT },
            ],
            conditions: vec![ConditionIr {
                reads: vec![Slot(0), Slot(1), Slot(2)],
                mods: vec![ModificationIr {
                    map: DIST,
                    at: Place::GenTrg,
                    reads: vec![Slot(1), Slot(2)],
                    kind: ModKind::Assign,
                }],
                is_else: false,
            }],
        }
    }

    #[test]
    fn fig6_sssp_is_one_message_and_merged() {
        // "Fig. 6: One-message communication for the SSSP pattern": the
        // subexpression operands dist[v] and weight[e] are local to v, and
        // the merged evaluate+modify message goes to trg(e).
        for mode in [PlanMode::Faithful, PlanMode::Optimized] {
            let plan = compile(&sssp_ir(), mode).unwrap();
            assert_eq!(plan.merged, vec![true], "{mode:?}");
            let cp = plan.comm_plan();
            assert_eq!(cp.messages, 1, "{mode:?}\n{plan}");
            assert_eq!(cp.hops, vec![(Place::Input, Place::GenTrg)]);
        }
    }

    #[test]
    fn sssp_evalmodify_refreshes_target_reads() {
        // The synchronization guarantee: dist[trg(e)] is read *fresh* at
        // the evaluation site, under the target's synchronization.
        let plan = compile(&sssp_ir(), PlanMode::Optimized).unwrap();
        let em = plan
            .steps
            .iter()
            .find_map(|s| match s {
                ExecStep::EvalModify {
                    local_slots, mods, ..
                } => Some((local_slots.clone(), mods.clone())),
                _ => None,
            })
            .expect("merged step exists");
        assert_eq!(em.0, vec![0]); // slot 0 = dist[trg(e)]
        assert_eq!(em.1, vec![0]); // the single modification
    }

    /// The Fig. 5 reconstruction: a two-branch gather tree with five value
    /// localities plus the pass-through that resolves the deepest one.
    /// See DESIGN.md, experiment F5.
    fn fig5_ir() -> ActionIr {
        // Branch A: n1 = a[v], n2 = b[n1] (a value is read at n2 too).
        // Branch B: n3 = c[v], n4 = d[n3], u = e[n4], n5 = f[u]; a value is
        // gathered at every node; evaluation happens at n5.
        let (a, b, c, d, e, f, val, val2) = (0, 1, 2, 3, 4, 5, 6, 7);
        let n1 = Place::map_at(a, Place::Input);
        let n2 = Place::map_at(b, n1.clone());
        let n3 = Place::map_at(c, Place::Input);
        let n4 = Place::map_at(d, n3.clone());
        let u = Place::map_at(e, n4.clone());
        let n5 = Place::map_at(f, u.clone());
        ActionIr {
            name: "fig5".into(),
            generator: GeneratorIr::None,
            slots: vec![
                ReadRef::VertexProp {
                    map: a,
                    at: Place::Input,
                }, // resolves n1
                ReadRef::VertexProp { map: b, at: n1 }, // value at n1, resolves n2
                ReadRef::VertexProp { map: val2, at: n2 }, // value at n2
                ReadRef::VertexProp {
                    map: c,
                    at: Place::Input,
                }, // resolves n3
                ReadRef::VertexProp { map: d, at: n3 }, // value at n3, resolves n4
                ReadRef::VertexProp { map: e, at: n4 }, // value at n4, resolves u
                ReadRef::VertexProp { map: f, at: u },  // value at u, resolves n5
                ReadRef::VertexProp {
                    map: val,
                    at: n5.clone(),
                }, // value at n5
            ],
            conditions: vec![ConditionIr {
                reads: (0..8).map(Slot).collect(),
                mods: vec![ModificationIr {
                    map: val,
                    at: n5,
                    reads: vec![Slot(1)],
                    kind: ModKind::Assign,
                }],
                is_else: false,
            }],
        }
    }

    #[test]
    fn fig5_faithful_walk_is_eight_messages() {
        let plan = compile(&fig5_ir(), PlanMode::Faithful).unwrap();
        let cp = plan.comm_plan();
        assert_eq!(cp.messages, 8, "{plan}\n{cp}");
    }

    #[test]
    fn fig5_optimized_walk_is_six_messages() {
        // The dashed-line optimization: jump straight between required
        // localities instead of backing up through v.
        let plan = compile(&fig5_ir(), PlanMode::Optimized).unwrap();
        let cp = plan.comm_plan();
        assert_eq!(cp.messages, 6, "{plan}\n{cp}");
    }

    #[test]
    fn undeclared_pointer_read_is_an_error() {
        // Using p[x] as a locality without declaring the read of p at x.
        let p = Place::map_at(9, Place::Input);
        let ir = ActionIr {
            name: "bad".into(),
            generator: GeneratorIr::None,
            slots: vec![ReadRef::VertexProp { map: 0, at: p }],
            conditions: vec![ConditionIr {
                reads: vec![Slot(0)],
                mods: vec![],
                is_else: false,
            }],
        };
        let err = compile(&ir, PlanMode::Optimized).unwrap_err();
        assert!(err.has_code(DiagCode::P006), "{err}");
        assert!(err.to_string().contains("not declared"), "{err}");
    }

    #[test]
    fn else_chain_branches() {
        // if c0 {m0} else if c1 {m1} — c0 true skips c1.
        let m: MapId = 0;
        let ir = ActionIr {
            name: "chain".into(),
            generator: GeneratorIr::None,
            slots: vec![ReadRef::VertexProp {
                map: m,
                at: Place::Input,
            }],
            conditions: vec![
                ConditionIr {
                    reads: vec![Slot(0)],
                    mods: vec![ModificationIr {
                        map: 1,
                        at: Place::Input,
                        reads: vec![],
                        kind: ModKind::Assign,
                    }],
                    is_else: false,
                },
                ConditionIr {
                    reads: vec![Slot(0)],
                    mods: vec![ModificationIr {
                        map: 2,
                        at: Place::Input,
                        reads: vec![],
                        kind: ModKind::Assign,
                    }],
                    is_else: true,
                },
            ],
        };
        let plan = compile(&ir, PlanMode::Optimized).unwrap();
        // Condition 0's true path must jump past condition 1 (it is an
        // else): find the EvalModify for cond 0 and check its on_true is
        // the End step.
        let end = plan.steps.len() - 1;
        let c0 = plan
            .steps
            .iter()
            .find_map(|s| match s {
                ExecStep::EvalModify {
                    cond: 0, on_true, ..
                } => Some(*on_true),
                _ => None,
            })
            .unwrap();
        assert_eq!(c0, end, "{plan}");
    }

    #[test]
    fn gather_elision_across_conditions() {
        // Two conditions reading the same remote value: the second gathers
        // nothing ("the gather messages for that condition are elided").
        let ir = ActionIr {
            name: "elide".into(),
            generator: GeneratorIr::Adj,
            slots: vec![ReadRef::VertexProp {
                map: 0,
                at: Place::GenVertex,
            }],
            conditions: vec![
                ConditionIr {
                    reads: vec![Slot(0)],
                    mods: vec![ModificationIr {
                        map: 1,
                        at: Place::Input,
                        reads: vec![Slot(0)],
                        kind: ModKind::Assign,
                    }],
                    is_else: false,
                },
                ConditionIr {
                    reads: vec![Slot(0)],
                    mods: vec![ModificationIr {
                        map: 2,
                        at: Place::Input,
                        reads: vec![Slot(0)],
                        kind: ModKind::Assign,
                    }],
                    is_else: false,
                },
            ],
        };
        let plan = compile(&ir, PlanMode::Optimized).unwrap();
        // Second condition must emit no Gather steps: its value is already
        // in the payload.
        let entry2 = plan.cond_entries[1];
        let gathers_after = plan.steps[entry2..]
            .iter()
            .filter(|s| matches!(s, ExecStep::Gather { .. }))
            .count();
        assert_eq!(gathers_after, 0, "{plan}");
    }

    #[test]
    fn input_only_action_needs_no_messages() {
        // Condition and modification both at v: zero messages.
        let ir = ActionIr {
            name: "local".into(),
            generator: GeneratorIr::None,
            slots: vec![ReadRef::VertexProp {
                map: 0,
                at: Place::Input,
            }],
            conditions: vec![ConditionIr {
                reads: vec![Slot(0)],
                mods: vec![ModificationIr {
                    map: 0,
                    at: Place::Input,
                    reads: vec![Slot(0)],
                    kind: ModKind::Assign,
                }],
                is_else: false,
            }],
        };
        let plan = compile(&ir, PlanMode::Optimized).unwrap();
        assert_eq!(plan.comm_plan().messages, 0, "{plan}");
        assert_eq!(plan.merged, vec![true]);
    }
}

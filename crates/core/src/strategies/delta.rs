//! The Δ-stepping strategy (§II-A), in both of the paper's forms: the
//! epoch-per-bucket version and the asynchronous `try_finish` version
//! ("we have implemented a distributed version of Δ-stepping where every
//! thread on every node has its own local buckets", §III-D).

use std::sync::Arc;

use dgp_am::{AmCtx, SpanKind};
use dgp_graph::properties::AtomicVertexMap;
use dgp_graph::VertexId;

use crate::engine::{ActionId, PatternEngine};
use crate::obs::Observer;
use crate::strategies::Buckets;

/// The paper's `delta` strategy:
///
/// ```text
/// strategy delta(action a, container vertices, property-map m, delta Δ) {
///   buckets B; i = 0;
///   for (v in vertices) B.insert(v, m[v], Δ);
///   a.work(Vertex v) = { B.insert(v, m[v], Δ); }
///   while (!B.empty()) { while (!B[i].empty()) { v = B[i].pop(); a(v); } i++; }
/// }
/// ```
///
/// Each bucket is emptied inside an epoch "because the work resulting from
/// ongoing actions may insert vertices into the bucket after it tests
/// empty. Therefore, epoch must be used to finish ongoing actions, and the
/// bucket has to be tested again."
///
/// `m` is the bucketing property map (tentative distances for SSSP);
/// `seeds` is this rank's portion of the start set (their `m` values must
/// be current). Collective. Returns the number of epochs run.
pub fn delta_stepping(
    ctx: &AmCtx,
    engine: &PatternEngine,
    action: ActionId,
    seeds: &[VertexId],
    m: &AtomicVertexMap<f64>,
    delta: f64,
) -> usize {
    let buckets = Arc::new(Buckets::new(delta));
    let rank = ctx.rank();
    for &v in seeds {
        debug_assert_eq!(engine.graph().owner(v), rank, "seeds are rank-local");
        buckets.insert(v, m.get(rank, v));
    }
    // a.work(v) = B.insert(v, m[v], Δ) — runs at v's owner, so m[v] is a
    // local read.
    let hook_buckets = buckets.clone();
    let hook_m = m.clone();
    engine.set_work_hook(
        action,
        Arc::new(move |hctx, v| {
            hook_buckets.insert(v, hook_m.get(hctx.rank(), v));
        }),
    );

    let mut epochs = 0;
    loop {
        // Globally lowest non-empty bucket. Improvements of an
        // already-bucketed vertex can re-insert it *below* the index being
        // processed, so the scan restarts from 0 every round rather than
        // advancing monotonically (relaxation is idempotent, so reprocessing
        // is always safe; skipping would strand work).
        let local = buckets
            .first_nonempty_from(0)
            .map(|b| b as u64)
            .unwrap_or(u64::MAX);
        let global = ctx.all_reduce(local, |a, b| a.min(b));
        if global == u64::MAX {
            break;
        }
        let i = global as usize;
        // arg1 = drain rounds this bucket needed before it stayed empty.
        let mut bucket_span = ctx
            .span(SpanKind::Strategy, "delta.bucket")
            .map(|s| s.args(i as u64, 0));
        let mut rounds = 0u64;
        let obs = Observer::new(engine);
        // Empty bucket i; handlers may refill it while we drain, so retest
        // collectively after every epoch.
        loop {
            ctx.epoch(|ctx| {
                let mut popped = 0usize;
                while let Some(v) = buckets.pop(i) {
                    popped += 1;
                    engine.run_at(ctx, action, v);
                }
                obs.publish_bucket(ctx, i, popped);
            });
            epochs += 1;
            rounds += 1;
            let refilled = ctx.any_rank(!buckets.is_empty_at(i));
            if !refilled {
                break;
            }
        }
        if let Some(s) = bucket_span.as_mut() {
            s.set_arg1(rounds);
        }
    }
    engine.clear_work_hook(action);
    epochs
}

/// Δ-stepping with the paper's light/heavy edge split (§II-A: "relaxing
/// heavy edges, which cannot insert more work into the current bucket,
/// separately from light edges, which may add work to the current
/// bucket"): the current bucket is settled using only the `light` action
/// (weight ≤ Δ, may refill the bucket), then the `heavy` action (weight >
/// Δ, lands strictly in later buckets) runs once per vertex settled in
/// this bucket.
///
/// Both actions share the `dist` invariant; they differ only in their
/// declarative weight guard — two patterns, one schedule. Collective;
/// returns the number of epochs run.
pub fn delta_stepping_split(
    ctx: &AmCtx,
    engine: &PatternEngine,
    light: ActionId,
    heavy: ActionId,
    seeds: &[VertexId],
    m: &AtomicVertexMap<f64>,
    delta: f64,
) -> usize {
    let buckets = Arc::new(Buckets::new(delta));
    let rank = ctx.rank();
    for &v in seeds {
        debug_assert_eq!(engine.graph().owner(v), rank, "seeds are rank-local");
        buckets.insert(v, m.get(rank, v));
    }
    let hook = {
        let b = buckets.clone();
        let m = m.clone();
        Arc::new(move |hctx: &AmCtx, v: VertexId| {
            b.insert(v, m.get(hctx.rank(), v));
        }) as Arc<dyn Fn(&AmCtx, VertexId) + Send + Sync>
    };
    engine.set_work_hook(light, hook.clone());
    engine.set_work_hook(heavy, hook);

    let mut epochs = 0;
    loop {
        let local = buckets
            .first_nonempty_from(0)
            .map(|b| b as u64)
            .unwrap_or(u64::MAX);
        let global = ctx.all_reduce(local, |a, b| a.min(b));
        if global == u64::MAX {
            break;
        }
        let i = global as usize;
        // Phase 1: settle bucket i with light edges only, remembering who
        // was settled.
        let mut settled: Vec<VertexId> = Vec::new();
        let obs = Observer::new(engine);
        {
            let mut light_span = ctx
                .span(SpanKind::Strategy, "delta.light")
                .map(|s| s.args(i as u64, 0));
            loop {
                ctx.epoch(|ctx| {
                    let before = settled.len();
                    while let Some(v) = buckets.pop(i) {
                        settled.push(v);
                        engine.run_at(ctx, light, v);
                    }
                    obs.publish_bucket(ctx, i, settled.len() - before);
                });
                epochs += 1;
                let refilled = ctx.any_rank(!buckets.is_empty_at(i));
                if !refilled {
                    break;
                }
            }
            if let Some(s) = light_span.as_mut() {
                s.set_arg1(settled.len() as u64);
            }
        }
        // Phase 2: heavy edges of everything settled in this bucket, once.
        settled.sort_unstable();
        settled.dedup();
        let _heavy_span = ctx
            .span(SpanKind::Strategy, "delta.heavy")
            .map(|s| s.args(i as u64, settled.len() as u64));
        ctx.epoch(|ctx| {
            for &v in &settled {
                engine.run_at(ctx, heavy, v);
            }
            obs.publish_bucket(ctx, i, settled.len());
        });
        epochs += 1;
    }
    engine.clear_work_hook(light);
    engine.clear_work_hook(heavy);
    epochs
}

/// The asynchronous Δ-stepping of §III-D: one epoch for the whole run;
/// each rank drains its lowest non-empty bucket and, "when a thread runs
/// out of work locally, it tries to terminate the epoch, which succeeds if
/// all other threads everywhere also run out of work... If ending the
/// epoch is unsuccessful, however, the thread goes back to its local
/// bucket structure and tries to perform more work (its buckets can be
/// filled while it tries to end the epoch)."
///
/// Returns the number of `try_finish` attempts this rank made.
pub fn delta_stepping_async(
    ctx: &AmCtx,
    engine: &PatternEngine,
    action: ActionId,
    seeds: &[VertexId],
    m: &AtomicVertexMap<f64>,
    delta: f64,
) -> usize {
    let buckets = Arc::new(Buckets::new(delta));
    let rank = ctx.rank();
    for &v in seeds {
        debug_assert_eq!(engine.graph().owner(v), rank, "seeds are rank-local");
        buckets.insert(v, m.get(rank, v));
    }
    let hook_buckets = buckets.clone();
    let hook_m = m.clone();
    engine.set_work_hook(
        action,
        Arc::new(move |hctx, v| {
            hook_buckets.insert(v, hook_m.get(hctx.rank(), v));
        }),
    );

    let mut attempts = 0;
    let mut async_span = ctx.span(SpanKind::Strategy, "delta.async");
    let obs = Observer::new(engine);
    ctx.epoch(|ctx| loop {
        // Drain lowest buckets first (the label-correcting order heuristic;
        // any order converges).
        let mut popped = 0usize;
        while let Some(i) = buckets.first_nonempty_from(0) {
            while let Some(v) = buckets.pop(i) {
                popped += 1;
                engine.run_at(ctx, action, v);
            }
        }
        // The whole run is one epoch, so successive publishes accumulate
        // into that epoch's single profile.
        obs.publish(ctx, popped);
        // Out of local work: try to end the epoch (contract: only called
        // with empty local buckets).
        attempts += 1;
        if ctx.try_finish() {
            break;
        }
        // Rejected — perform whatever work arrived meanwhile.
        ctx.epoch_flush();
    });
    if let Some(s) = async_span.as_mut() {
        s.set_arg1(attempts as u64);
    }
    engine.clear_work_hook(action);
    attempts
}

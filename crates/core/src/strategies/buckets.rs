//! The thread-safe buckets structure backing the Δ-stepping strategy.
//!
//! "The Δ-stepping strategy, for example, has to provide a thread-safe
//! buckets data structure" (§II-A). A bucket `B[i]` holds vertices whose
//! bucketing value falls in `[i·Δ, (i+1)·Δ)`. Work hooks insert from
//! handler threads while the strategy's main loop pops, so everything is
//! behind a lock (a single mutex — bucket operations are tiny compared to
//! the actions they schedule).

use dgp_graph::VertexId;
use parking_lot::Mutex;

struct Inner {
    buckets: Vec<Vec<VertexId>>,
    len: usize,
}

/// Thread-safe Δ-buckets over rank-local vertices.
pub struct Buckets {
    delta: f64,
    inner: Mutex<Inner>,
}

impl Buckets {
    /// Buckets of width `delta` (> 0).
    pub fn new(delta: f64) -> Buckets {
        assert!(delta > 0.0, "Δ must be positive");
        Buckets {
            delta,
            inner: Mutex::new(Inner {
                buckets: Vec::new(),
                len: 0,
            }),
        }
    }

    /// The bucket index of value `x`.
    pub fn index_of(&self, x: f64) -> usize {
        assert!(x >= 0.0 && x.is_finite(), "bucket value {x} out of domain");
        (x / self.delta) as usize
    }

    /// Insert `v` with bucketing value `x` (e.g. its tentative distance).
    pub fn insert(&self, v: VertexId, x: f64) {
        let idx = self.index_of(x);
        let mut g = self.inner.lock();
        if g.buckets.len() <= idx {
            g.buckets.resize_with(idx + 1, Vec::new);
        }
        g.buckets[idx].push(v);
        g.len += 1;
    }

    /// Pop one vertex from bucket `i`.
    pub fn pop(&self, i: usize) -> Option<VertexId> {
        let mut g = self.inner.lock();
        let v = g.buckets.get_mut(i)?.pop();
        if v.is_some() {
            g.len -= 1;
        }
        v
    }

    /// Drain bucket `i` entirely.
    pub fn drain(&self, i: usize) -> Vec<VertexId> {
        let mut g = self.inner.lock();
        let out = match g.buckets.get_mut(i) {
            Some(b) => std::mem::take(b),
            None => Vec::new(),
        };
        g.len -= out.len();
        out
    }

    /// Whether bucket `i` is empty.
    pub fn is_empty_at(&self, i: usize) -> bool {
        self.inner
            .lock()
            .buckets
            .get(i)
            .is_none_or(|b| b.is_empty())
    }

    /// Lowest non-empty bucket index at or after `from`.
    pub fn first_nonempty_from(&self, from: usize) -> Option<usize> {
        let g = self.inner.lock();
        (from..g.buckets.len()).find(|&i| !g.buckets[i].is_empty())
    }

    /// Total queued vertices.
    pub fn len(&self) -> usize {
        self.inner.lock().len
    }

    /// Whether any bucket holds work.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn indexes_by_delta() {
        let b = Buckets::new(2.0);
        assert_eq!(b.index_of(0.0), 0);
        assert_eq!(b.index_of(1.999), 0);
        assert_eq!(b.index_of(2.0), 1);
        assert_eq!(b.index_of(9.5), 4);
    }

    #[test]
    fn insert_pop_drain() {
        let b = Buckets::new(1.0);
        b.insert(10, 0.5);
        b.insert(11, 0.9);
        b.insert(12, 3.2);
        assert_eq!(b.len(), 3);
        assert_eq!(b.first_nonempty_from(0), Some(0));
        assert_eq!(b.first_nonempty_from(1), Some(3));
        assert!(b.pop(0).is_some());
        let rest = b.drain(0);
        assert_eq!(rest.len(), 1);
        assert!(b.is_empty_at(0));
        assert_eq!(b.drain(3), vec![12]);
        assert!(b.is_empty());
    }

    #[test]
    fn pop_from_missing_bucket_is_none() {
        let b = Buckets::new(1.0);
        assert_eq!(b.pop(7), None);
        assert!(b.is_empty_at(7));
        assert_eq!(b.first_nonempty_from(0), None);
    }

    #[test]
    fn concurrent_insert_pop_balances() {
        let b = Arc::new(Buckets::new(1.0));
        std::thread::scope(|s| {
            for t in 0..4 {
                let b = b.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        b.insert(t * 1000 + i, (i % 10) as f64);
                    }
                });
            }
        });
        assert_eq!(b.len(), 4000);
        let mut popped = 0;
        for i in 0..10 {
            popped += b.drain(i).len();
        }
        assert_eq!(popped, 4000);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn invalid_value_rejected() {
        Buckets::new(1.0).insert(0, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "Δ must be positive")]
    fn zero_delta_rejected() {
        Buckets::new(0.0);
    }
}

//! Strategies: "user defined programs that apply patterns in a certain
//! way" (§I). The paper ships `fixed_point`, `once`, and Δ-stepping; all
//! three are here, built solely from the public customization points —
//! epochs, `epoch_flush`/`try_finish`, and per-action work hooks — so user
//! code can define its own the same way (the CC driver in
//! `dgp-algorithms` does exactly that).
//!
//! All strategies are SPMD-collective: every rank calls them at the same
//! point with its rank-local seed set.

mod basic;
mod buckets;
mod delta;

pub use basic::{fixed_point, once, once_until_fixed};
pub use buckets::Buckets;
pub use delta::{delta_stepping, delta_stepping_async, delta_stepping_split};

//! The `fixed_point` and `once` strategies (§II).

use dgp_am::{AmCtx, SpanKind};
use dgp_graph::VertexId;
use std::sync::Arc;

use crate::engine::{ActionId, PatternEngine};
use crate::obs::Observer;

/// The paper's `fixed_point` strategy:
///
/// ```text
/// strategy fixed_point(action a, container vertices) {
///   a.work(Vertex v) = { a(v) };
///   epoch { for (v in vertices) a(v); }
/// }
/// ```
///
/// The work hook re-runs the action at every dependent vertex, and the
/// epoch guarantees "all work started directly in the action and
/// indirectly in the work hook is finished before the strategy exits".
///
/// Collective; `seeds` is this rank's portion of the start set.
pub fn fixed_point(ctx: &AmCtx, engine: &PatternEngine, action: ActionId, seeds: &[VertexId]) {
    let _span = ctx
        .span(SpanKind::Strategy, "strategy.fixed_point")
        .map(|s| s.args(action as u64, seeds.len() as u64));
    let rerun = engine.clone();
    engine.set_work_hook(
        action,
        Arc::new(move |hctx, v| {
            // "The action a is immediately run on the vertex."
            rerun.run_at(hctx, action, v);
        }),
    );
    let obs = Observer::new(engine);
    ctx.epoch(|ctx| {
        for &v in seeds {
            engine.invoke(ctx, action, v);
        }
        obs.publish(ctx, seeds.len());
    });
    engine.clear_work_hook(action);
}

/// The paper's `once` strategy: "performs an action at every vertex in the
/// input set, recording if any assignments to property maps were
/// performed". Returns that global flag (dependencies are ignored — the
/// §III-C default).
///
/// Collective; `vertices` is this rank's portion of the input set.
pub fn once(ctx: &AmCtx, engine: &PatternEngine, action: ActionId, vertices: &[VertexId]) -> bool {
    let _span = ctx
        .span(SpanKind::Strategy, "strategy.once")
        .map(|s| s.args(action as u64, vertices.len() as u64));
    let before = engine.stats().modifications_changed;
    let obs = Observer::new(engine);
    ctx.epoch(|ctx| {
        for &v in vertices {
            engine.invoke(ctx, action, v);
        }
        obs.publish(ctx, vertices.len());
    });
    let changed_here = engine.stats().modifications_changed > before;
    ctx.any_rank(changed_here)
}

/// Drive [`once`] to a fixed point: re-apply until a round performs no
/// assignment anywhere (the shape of the CC pointer-jumping loop, §II-B).
/// Returns the number of rounds that performed work.
pub fn once_until_fixed(
    ctx: &AmCtx,
    engine: &PatternEngine,
    action: ActionId,
    vertices: &[VertexId],
) -> usize {
    let mut rounds = 0;
    while once(ctx, engine, action, vertices) {
        rounds += 1;
    }
    rounds
}

//! Always-on plan soundness: a path-sensitive abstract interpreter over
//! [`ExecPlan`] (INTERNALS §13).
//!
//! The planner's output is a small branching message program; this module
//! proves, *before any message is sent*, that the program is safe to run
//! without per-message guards:
//!
//! * **Slot-state lattice.** Every payload slot is tracked through
//!   `Unset → Gathered → Resolved → Written`. `Gathered` and `Resolved`
//!   are *must* facts (a join across control-flow paths keeps them only
//!   when every incoming path established them); `Written` (payload copy
//!   may be stale relative to the store) is a *may* fact (a join keeps it
//!   when any path wrote through an aliasing target).
//! * **Alias tracking for pointer indirection.** A hop to `p[x]` is routed
//!   by reading the resolution slot holding `p[x]`'s value from the
//!   payload: the hop demands that slot `Gathered` on every path
//!   (otherwise `D002`) and promotes it to `Resolved`. Writes mark every
//!   slot whose `(map, locality class)` may alias the modified cell as
//!   `Written` — the [`crate::verify::races_in_action`] notion of aliasing
//!   (`p[x]` vs `p[y]` through the same outermost map), applied to payload
//!   staleness instead of store races.
//! * **Fixpoint over looping shapes.** States are keyed on
//!   `(pc, current place)` and joined monotonically, so plans whose
//!   control flow re-enters earlier steps (hand-built or future planner
//!   output — today's planner emits DAGs) terminate in a finite number of
//!   passes instead of enumerating paths.
//!
//! The checks themselves are the stable diagnostic codes of
//! [`crate::verify`]: `L001` (a gather/fresh read/modification away from
//! its Def. 1 locality), `D002` (a payload slot consumed, or a hop
//! resolved, before every path gathered it), `S005` (structurally
//! malformed plan), `P006` (a pointer place with no declared resolving
//! read). A plan with no error-severity findings earns a
//! [`VerifiedFacts`] — the sealed capability [`super::compile`] attaches
//! to the plan, which the engine accepts as licence to elide its
//! per-message locality and def-use guards (the proof-carrying-plan
//! contract of INTERNALS §13).

use std::collections::HashMap;

use crate::ir::{ActionIr, Place, ReadRef, Slot};
use crate::plan::{ExecPlan, ExecStep};
use crate::verify::{DiagCode, Diagnostic, Severity};

/// Abstract state of one payload slot at one program point.
///
/// The lattice is the product of two *must* bits and one *may* bit;
/// `Unset` is all-false, `Gathered` sets `gathered`, `Resolved` adds
/// `resolved` (the slot's value was consumed to route a hop), `Written`
/// sets `may_stale` (an aliasing store write may have invalidated the
/// payload copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotState {
    /// Every path to this point gathered the slot (must).
    pub gathered: bool,
    /// Every path to this point also used the slot to resolve a hop (must).
    pub resolved: bool,
    /// Some path wrote through a target that may alias the slot's cell
    /// after it was gathered, so the payload copy may be stale (may).
    pub may_stale: bool,
}

impl SlotState {
    /// Control-flow join: must-facts AND, may-facts OR.
    fn join(&mut self, other: &SlotState) -> bool {
        let next = SlotState {
            gathered: self.gathered && other.gathered,
            resolved: self.resolved && other.resolved,
            may_stale: self.may_stale || other.may_stale,
        };
        let changed = next != *self;
        *self = next;
        changed
    }
}

/// One abstract machine state: the per-slot lattice at a program point.
type AbsState = Vec<SlotState>;

fn join_state(into: &mut AbsState, from: &AbsState) -> bool {
    let mut changed = false;
    for (a, b) in into.iter_mut().zip(from) {
        changed |= a.join(b);
    }
    changed
}

/// The proof a plan earns when the abstract interpreter finds no errors.
///
/// This is a *sealed capability*: the private field keeps construction
/// inside this module, so a `VerifiedFacts` on an [`ExecPlan`] is evidence
/// that [`analyze`] ran over exactly that plan and proved every fact
/// below. The engine relies on this to drop its per-message runtime
/// guards (see `engine/exec.rs`): a hand-mutated plan cannot carry one.
// Not `#[non_exhaustive]`: that only seals across crates, and the point
// is to keep sibling modules (the planner, the engine) from minting a
// proof they did not earn.
#[allow(clippy::manual_non_exhaustive)]
#[derive(Debug, Clone)]
pub struct VerifiedFacts {
    /// Static sites (gathers, fresh reads, modification targets) proven to
    /// execute at their Def. 1 locality — the per-message `check_locality`
    /// calls the interpreter may elide.
    pub locality_sites: u32,
    /// Pointer-indirected hops whose resolution slot is proven gathered on
    /// every path — the def-use half of the proof.
    pub resolution_hops: u32,
    /// Payload-slot consumptions (condition tests, modification operands)
    /// proven gathered-first on every path.
    pub consumed_sites: u32,
    /// No consumption ever reads a may-stale payload copy: every value a
    /// test or right-hand side uses is re-read fresh after any aliasing
    /// write on the same path.
    pub stale_free: bool,
    /// `(pc, place)` states explored before the fixpoint converged.
    pub states_explored: u32,
    _sealed: (),
}

impl VerifiedFacts {
    /// Per-message runtime checks the engine may skip on this plan: one
    /// locality comparison per proven site plus one resolve-and-compare
    /// per proven consumption (slot reads resolve their locality before
    /// the guard today).
    pub fn runtime_checks_elided(&self) -> u64 {
        self.locality_sites as u64 + self.consumed_sites as u64
    }

    /// Short human summary for tables: the facts proved.
    pub fn summary(&self) -> String {
        format!(
            "locality×{} def-use×{} resolve×{}{}",
            self.locality_sites,
            self.consumed_sites,
            self.resolution_hops,
            if self.stale_free { " stale-free" } else { "" }
        )
    }
}

/// The analysis result: diagnostics (errors and, in the future, warnings)
/// plus the proof when no error was found.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Findings, in deterministic (pc-sorted) order.
    pub diagnostics: Vec<Diagnostic>,
    /// The proof, present exactly when no error-severity finding exists.
    pub facts: Option<VerifiedFacts>,
}

impl Analysis {
    /// Whether any finding is error-severity.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }
}

/// The slot that resolves a hop to `p[x]`: the declared read of `p` at
/// `x`, exactly as the engine's `Resolver::FromSlot` is built.
fn resolution_slot_of(ir: &ActionIr, place: &Place) -> Option<usize> {
    let Place::MapAt(m, inner) = place else {
        return None;
    };
    ir.slots
        .iter()
        .position(|r| matches!(r, ReadRef::VertexProp { map, at } if map == m && at == &**inner))
}

/// Same locality class: equal, or pointer dereferences through one
/// outermost map (two `pnt[..]` reads can land on one root vertex).
fn may_alias(p: &Place, q: &Place) -> bool {
    if p == q {
        return true;
    }
    matches!((p, q), (Place::MapAt(a, _), Place::MapAt(b, _)) if a == b)
}

/// Run the abstract interpreter over one compiled plan.
///
/// Phase 1 is a worklist fixpoint: propagate [`SlotState`]s through every
/// step, keyed on `(pc, current place)`, joining at merge points. Phase 2
/// replays the (now stable) states in program order and emits
/// diagnostics + facts, so findings are deterministic regardless of
/// worklist order.
pub fn analyze(ir: &ActionIr, plan: &ExecPlan) -> Analysis {
    let nslots = ir.slots.len();
    let bottom: AbsState = vec![SlotState::default(); nslots];

    // ----- Phase 1: fixpoint ---------------------------------------
    let mut states: HashMap<(usize, Place), AbsState> = HashMap::new();
    let mut worklist: Vec<(usize, Place)> = Vec::new();
    states.insert((0, Place::Input), bottom.clone());
    worklist.push((0, Place::Input));

    // Bounded by |keys| × |lattice heights|; each pop either converges or
    // strictly advances some key's state toward its fixpoint.
    while let Some((pc, here)) = worklist.pop() {
        let state = states[&(pc, here.clone())].clone();
        let Some(step) = plan.steps.get(pc) else {
            continue; // reported as S005 in phase 2
        };
        let mut flow = |succ: usize, place: Place, st: &AbsState| {
            let key = (succ, place);
            match states.get_mut(&key) {
                Some(existing) => {
                    if join_state(existing, st) {
                        worklist.push(key);
                    }
                }
                None => {
                    states.insert(key.clone(), st.clone());
                    worklist.push(key);
                }
            }
        };
        match step {
            ExecStep::Goto { to, next } => {
                if let Some(p) = plan.places.get(*to) {
                    let mut st = state;
                    if let Some(rs) = resolution_slot_of(ir, p) {
                        if let Some(s) = st.get_mut(rs) {
                            s.resolved = s.gathered;
                        }
                    }
                    flow(*next, p.clone(), &st);
                }
            }
            ExecStep::Gather { slots, next } => {
                let mut st = state;
                for &s in slots {
                    if let Some(slot) = st.get_mut(s) {
                        slot.gathered = true;
                        slot.may_stale = false;
                    }
                }
                flow(*next, here.clone(), &st);
            }
            ExecStep::Eval {
                local_slots,
                on_true,
                on_false,
                ..
            } => {
                let mut st = state;
                for &s in local_slots {
                    if let Some(slot) = st.get_mut(s) {
                        slot.gathered = true;
                        slot.may_stale = false;
                    }
                }
                flow(*on_true, here.clone(), &st);
                flow(*on_false, here.clone(), &st);
            }
            ExecStep::EvalModify {
                cond,
                local_slots,
                mods,
                on_true,
                on_false,
            } => {
                let mut st = state;
                for &s in local_slots {
                    if let Some(slot) = st.get_mut(s) {
                        slot.gathered = true;
                        slot.may_stale = false;
                    }
                }
                // The write happens only when the test fires: staleness
                // propagates to the true branch alone (path sensitivity —
                // an `else` chain never observes its guard's own write).
                flow(*on_false, here.clone(), &st);
                mark_written(ir, &mut st, *cond, mods);
                flow(*on_true, here.clone(), &st);
            }
            ExecStep::ModifyGroup {
                cond,
                local_slots,
                mods,
                next,
            } => {
                let mut st = state;
                for &s in local_slots {
                    if let Some(slot) = st.get_mut(s) {
                        slot.gathered = true;
                        slot.may_stale = false;
                    }
                }
                mark_written(ir, &mut st, *cond, mods);
                flow(*next, here.clone(), &st);
            }
            ExecStep::End => {}
        }
    }

    // ----- Phase 2: deterministic checking over the stable states --
    let mut keys: Vec<(usize, Place)> = states.keys().cloned().collect();
    keys.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then_with(|| a.1.to_string().cmp(&b.1.to_string()))
    });

    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut emit = |d: Diagnostic| {
        if !diagnostics.contains(&d) {
            diagnostics.push(d);
        }
    };
    let mut stale_consumptions = 0u32;

    for (pc, here) in &keys {
        let state = &states[&(*pc, here.clone())];
        let Some(step) = plan.steps.get(*pc) else {
            emit(diag(
                DiagCode::S005,
                ir,
                None,
                *pc,
                format!("plan jumps to step {pc}, past the end of the program"),
            ));
            continue;
        };
        // A slot read at the current vertex must live here per Def. 1.
        let check_local = |emit: &mut dyn FnMut(Diagnostic), what: &str, slots: &[usize]| {
            for &s in slots {
                let Some(r) = ir.slots.get(s) else {
                    emit(diag(
                        DiagCode::S005,
                        ir,
                        None,
                        *pc,
                        format!("{what} references undeclared slot {s}"),
                    ));
                    continue;
                };
                if r.locality() != *here {
                    emit(diag(
                        DiagCode::L001,
                        ir,
                        Some(here.clone()),
                        *pc,
                        format!(
                            "{what} reads {r} at {here}, but its Def. 1 locality is {}",
                            r.locality()
                        ),
                    ));
                }
            }
        };
        // A consumed slot must be gathered on every path; count may-stale
        // consumptions for the stale-free fact.
        let demand = |emit: &mut dyn FnMut(Diagnostic),
                      stale: &mut u32,
                      st: &AbsState,
                      fresh: &[usize],
                      what: &str,
                      slots: &[Slot]| {
            for &Slot(s) in slots {
                let ok = st.get(s).is_some_and(|x| x.gathered) || fresh.contains(&s);
                if !ok {
                    emit(diag(
                        DiagCode::D002,
                        ir,
                        Some(here.clone()),
                        *pc,
                        format!("{what} reads slot {s} before any path gathered it"),
                    ));
                }
                if st.get(s).is_some_and(|x| x.may_stale) && !fresh.contains(&s) {
                    *stale += 1;
                }
            }
        };
        let check_mod_site = |emit: &mut dyn FnMut(Diagnostic), mods: &[usize], cond: usize| {
            for &mi in mods {
                let Some(m) = ir.conditions.get(cond).and_then(|c| c.mods.get(mi)) else {
                    emit(diag(
                        DiagCode::S005,
                        ir,
                        None,
                        *pc,
                        format!("plan references undeclared modification {mi} of condition {cond}"),
                    ));
                    continue;
                };
                if m.at != *here {
                    emit(diag(
                        DiagCode::L001,
                        ir,
                        Some(here.clone()),
                        *pc,
                        format!(
                            "modification of p{}[{}] applied at {here}, away from its locality",
                            m.map, m.at
                        ),
                    ));
                }
            }
        };
        match step {
            ExecStep::Goto { to, .. } => match plan.places.get(*to) {
                Some(p) => {
                    if let Place::MapAt(m, inner) = p {
                        match resolution_slot_of(ir, p) {
                            Some(rs) => {
                                if !state.get(rs).is_some_and(|x| x.gathered) {
                                    emit(diag(
                                        DiagCode::D002,
                                        ir,
                                        Some(here.clone()),
                                        *pc,
                                        format!(
                                            "goto {p} resolves p{m}[{inner}] from slot {rs} \
                                             before any path gathered it"
                                        ),
                                    ));
                                }
                            }
                            None => emit(diag(
                                DiagCode::P006,
                                ir,
                                Some(p.clone()),
                                *pc,
                                format!(
                                    "goto {p} needs the read resolving p{m}[{inner}] declared \
                                     as a slot"
                                ),
                            )),
                        }
                    }
                }
                None => emit(diag(
                    DiagCode::S005,
                    ir,
                    None,
                    *pc,
                    format!("plan goto references undeclared place {to}"),
                )),
            },
            ExecStep::Gather { slots, .. } => {
                check_local(&mut emit, "gather", slots);
            }
            ExecStep::Eval {
                cond, local_slots, ..
            } => {
                check_local(&mut emit, "evaluate", local_slots);
                if let Some(c) = ir.conditions.get(*cond) {
                    demand(
                        &mut emit,
                        &mut stale_consumptions,
                        state,
                        local_slots,
                        "condition test",
                        &c.reads,
                    );
                }
            }
            ExecStep::EvalModify {
                cond,
                local_slots,
                mods,
                ..
            } => {
                check_local(&mut emit, "evaluate-and-modify", local_slots);
                if let Some(c) = ir.conditions.get(*cond) {
                    demand(
                        &mut emit,
                        &mut stale_consumptions,
                        state,
                        local_slots,
                        "condition test",
                        &c.reads,
                    );
                    for &mi in mods {
                        if let Some(m) = c.mods.get(mi) {
                            demand(
                                &mut emit,
                                &mut stale_consumptions,
                                state,
                                local_slots,
                                "merged modification",
                                &m.reads,
                            );
                        }
                    }
                }
                check_mod_site(&mut emit, mods, *cond);
            }
            ExecStep::ModifyGroup {
                cond,
                local_slots,
                mods,
                ..
            } => {
                check_local(&mut emit, "modification group", local_slots);
                if let Some(c) = ir.conditions.get(*cond) {
                    for &mi in mods {
                        if let Some(m) = c.mods.get(mi) {
                            demand(
                                &mut emit,
                                &mut stale_consumptions,
                                state,
                                local_slots,
                                "modification group",
                                &m.reads,
                            );
                        }
                    }
                }
                check_mod_site(&mut emit, mods, *cond);
            }
            ExecStep::End => {}
        }
    }

    let has_errors = diagnostics.iter().any(|d| d.severity == Severity::Error);
    let facts = if has_errors {
        None
    } else {
        let (mut locality_sites, mut resolution_hops, mut consumed_sites) = (0u32, 0u32, 0u32);
        for step in &plan.steps {
            match step {
                ExecStep::Goto { to, .. } => {
                    if plan
                        .places
                        .get(*to)
                        .is_some_and(|p| matches!(p, Place::MapAt(..)))
                    {
                        resolution_hops += 1;
                    }
                }
                ExecStep::Gather { slots, .. } => locality_sites += slots.len() as u32,
                ExecStep::Eval {
                    cond, local_slots, ..
                } => {
                    locality_sites += local_slots.len() as u32;
                    consumed_sites += ir.conditions.get(*cond).map_or(0, |c| c.reads.len() as u32);
                }
                ExecStep::EvalModify {
                    cond,
                    local_slots,
                    mods,
                    ..
                } => {
                    locality_sites += (local_slots.len() + mods.len()) as u32;
                    if let Some(c) = ir.conditions.get(*cond) {
                        consumed_sites += c.reads.len() as u32;
                        for &mi in mods {
                            consumed_sites += c.mods.get(mi).map_or(0, |m| m.reads.len() as u32);
                        }
                    }
                }
                ExecStep::ModifyGroup {
                    cond,
                    local_slots,
                    mods,
                    ..
                } => {
                    locality_sites += (local_slots.len() + mods.len()) as u32;
                    if let Some(c) = ir.conditions.get(*cond) {
                        for &mi in mods {
                            consumed_sites += c.mods.get(mi).map_or(0, |m| m.reads.len() as u32);
                        }
                    }
                }
                ExecStep::End => {}
            }
        }
        Some(VerifiedFacts {
            locality_sites,
            resolution_hops,
            consumed_sites,
            stale_free: stale_consumptions == 0,
            states_explored: keys.len() as u32,
            _sealed: (),
        })
    };
    Analysis { diagnostics, facts }
}

/// Mark every payload slot whose cell may alias a written target as
/// possibly stale (the `Written` lattice point). A slot freshly re-read
/// *after* the write would clear the bit again; the engine's merged step
/// also writes the new value back into the payload for the atomic shape,
/// which this conservatively ignores.
fn mark_written(ir: &ActionIr, st: &mut AbsState, cond: usize, mods: &[usize]) {
    let Some(c) = ir.conditions.get(cond) else {
        return;
    };
    for &mi in mods {
        let Some(m) = c.mods.get(mi) else { continue };
        for (s, r) in ir.slots.iter().enumerate() {
            if let ReadRef::VertexProp { map, at } = r {
                if *map == m.map && may_alias(at, &m.at) {
                    if let Some(slot) = st.get_mut(s) {
                        if slot.gathered {
                            slot.may_stale = true;
                        }
                    }
                }
            }
        }
    }
}

fn diag(
    code: DiagCode,
    ir: &ActionIr,
    place: Option<Place>,
    step: usize,
    message: String,
) -> Diagnostic {
    Diagnostic {
        code,
        severity: Severity::Error,
        action: ir.name.clone(),
        place,
        step: Some(step),
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ConditionIr, GeneratorIr, ModKind, ModificationIr};
    use crate::plan::{compile, PlanMode};

    fn relax_ir() -> ActionIr {
        ActionIr {
            name: "relax".into(),
            generator: GeneratorIr::OutEdges,
            slots: vec![
                ReadRef::VertexProp {
                    map: 0,
                    at: Place::GenTrg,
                },
                ReadRef::VertexProp {
                    map: 0,
                    at: Place::Input,
                },
                ReadRef::EdgeProp { map: 1 },
            ],
            conditions: vec![ConditionIr {
                reads: vec![Slot(0), Slot(1), Slot(2)],
                mods: vec![ModificationIr {
                    map: 0,
                    at: Place::GenTrg,
                    reads: vec![Slot(1), Slot(2)],
                    kind: ModKind::Assign,
                }],
                is_else: false,
            }],
        }
    }

    /// CC-style pointer chase: reads `lbl[pnt[v]]`, needs `pnt[v]` first.
    fn chase_ir() -> ActionIr {
        let pnt = Place::map_at(1, Place::Input);
        ActionIr {
            name: "chase".into(),
            generator: GeneratorIr::None,
            slots: vec![
                ReadRef::VertexProp {
                    map: 1,
                    at: Place::Input,
                },
                ReadRef::VertexProp {
                    map: 0,
                    at: pnt.clone(),
                },
            ],
            conditions: vec![ConditionIr {
                reads: vec![Slot(0), Slot(1)],
                mods: vec![ModificationIr {
                    map: 1,
                    at: Place::Input,
                    reads: vec![Slot(1)],
                    kind: ModKind::Assign,
                }],
                is_else: false,
            }],
        }
    }

    #[test]
    fn clean_plans_earn_facts() {
        for ir in [relax_ir(), chase_ir()] {
            for mode in [PlanMode::Faithful, PlanMode::Optimized] {
                let plan = compile(&ir, mode).unwrap();
                let a = analyze(&ir, &plan);
                assert!(
                    !a.has_errors(),
                    "{:?} {mode:?}: {:?}",
                    ir.name,
                    a.diagnostics
                );
                let facts = a.facts.expect("clean plan carries facts");
                assert!(facts.locality_sites > 0);
                assert!(facts.runtime_checks_elided() > 0);
            }
        }
    }

    #[test]
    fn compile_attaches_the_proof() {
        let plan = compile(&relax_ir(), PlanMode::Optimized).unwrap();
        assert!(plan.facts.is_some(), "{plan}");
    }

    #[test]
    fn dropped_resolution_gather_is_d002() {
        let ir = chase_ir();
        let mut plan = compile(&ir, PlanMode::Optimized).unwrap();
        plan.facts = None;
        for step in &mut plan.steps {
            if let ExecStep::Gather { slots, .. } = step {
                slots.retain(|&s| s != 0); // drop the pnt[v] gather
            }
        }
        let a = analyze(&ir, &plan);
        assert!(
            a.diagnostics
                .iter()
                .any(|d| d.code == DiagCode::D002 && d.message.contains("resolves")),
            "{:?}",
            a.diagnostics
        );
        assert!(a.facts.is_none());
    }

    #[test]
    fn must_join_demands_every_path() {
        // A hand-built diamond: one branch gathers slot 0, the other does
        // not; the join point consumes it. Path-insensitive ("any path")
        // analyses miss this; the must-join catches it.
        let ir = ActionIr {
            name: "diamond".into(),
            generator: GeneratorIr::None,
            slots: vec![
                ReadRef::VertexProp {
                    map: 0,
                    at: Place::Input,
                },
                ReadRef::VertexProp {
                    map: 1,
                    at: Place::Input,
                },
            ],
            conditions: vec![
                ConditionIr {
                    reads: vec![Slot(1)],
                    mods: vec![],
                    is_else: false,
                },
                ConditionIr {
                    reads: vec![Slot(0)],
                    mods: vec![],
                    is_else: false,
                },
            ],
        };
        let plan = ExecPlan {
            mode: PlanMode::Optimized,
            places: vec![Place::Input],
            steps: vec![
                // 0: eval c0 (fresh slot 1) ? 1 : 2
                ExecStep::Eval {
                    cond: 0,
                    local_slots: vec![1],
                    on_true: 1,
                    on_false: 2,
                },
                // 1: gather slot 0 (true branch only)
                ExecStep::Gather {
                    slots: vec![0],
                    next: 2,
                },
                // 2: eval c1 — consumes slot 0, ungathered on the false path
                ExecStep::Eval {
                    cond: 1,
                    local_slots: vec![],
                    on_true: 3,
                    on_false: 3,
                },
                ExecStep::End,
            ],
            cond_entries: vec![0, 2],
            merged: vec![false, false],
            facts: None,
        };
        let a = analyze(&ir, &plan);
        assert!(
            a.diagnostics
                .iter()
                .any(|d| d.code == DiagCode::D002 && d.step == Some(2)),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn looping_plan_reaches_a_fixpoint() {
        // A cycle: gather → eval → back to the gather. The fixpoint must
        // terminate and prove the consumption (the loop body gathers
        // before every eval).
        let ir = ActionIr {
            name: "looper".into(),
            generator: GeneratorIr::None,
            slots: vec![ReadRef::VertexProp {
                map: 0,
                at: Place::Input,
            }],
            conditions: vec![ConditionIr {
                reads: vec![Slot(0)],
                mods: vec![],
                is_else: false,
            }],
        };
        let plan = ExecPlan {
            mode: PlanMode::Optimized,
            places: vec![Place::Input],
            steps: vec![
                ExecStep::Gather {
                    slots: vec![0],
                    next: 1,
                },
                ExecStep::Eval {
                    cond: 0,
                    local_slots: vec![],
                    on_true: 0, // loop back
                    on_false: 2,
                },
                ExecStep::End,
            ],
            cond_entries: vec![0],
            merged: vec![false],
            facts: None,
        };
        let a = analyze(&ir, &plan);
        assert!(!a.has_errors(), "{:?}", a.diagnostics);
    }

    #[test]
    fn stale_consumption_clears_the_stale_free_fact() {
        // c0 writes p0[v] (merged, fresh-read) then c1 consumes the stale
        // payload copy of p0[v] without re-reading: legal (the paper's
        // elision semantics) but not stale-free.
        let ir = ActionIr {
            name: "stale".into(),
            generator: GeneratorIr::None,
            slots: vec![ReadRef::VertexProp {
                map: 0,
                at: Place::Input,
            }],
            conditions: vec![
                ConditionIr {
                    reads: vec![Slot(0)],
                    mods: vec![ModificationIr {
                        map: 0,
                        at: Place::Input,
                        reads: vec![Slot(0)],
                        kind: ModKind::Assign,
                    }],
                    is_else: false,
                },
                ConditionIr {
                    reads: vec![Slot(0)],
                    mods: vec![],
                    is_else: false,
                },
            ],
        };
        let plan = ExecPlan {
            mode: PlanMode::Optimized,
            places: vec![Place::Input],
            steps: vec![
                ExecStep::EvalModify {
                    cond: 0,
                    local_slots: vec![0],
                    mods: vec![0],
                    on_true: 1,
                    on_false: 1,
                },
                // consumes slot 0 after the write, without a fresh read
                ExecStep::Eval {
                    cond: 1,
                    local_slots: vec![],
                    on_true: 2,
                    on_false: 2,
                },
                ExecStep::End,
            ],
            cond_entries: vec![0, 1],
            merged: vec![true, false],
            facts: None,
        };
        let a = analyze(&ir, &plan);
        assert!(!a.has_errors(), "{:?}", a.diagnostics);
        assert!(!a.facts.unwrap().stale_free);

        // The planner's real output re-reads fresh: the shipped relax plan
        // stays stale-free.
        let relax = relax_ir();
        let plan = compile(&relax, PlanMode::Optimized).unwrap();
        assert!(analyze(&relax, &plan).facts.unwrap().stale_free, "{plan}");
    }

    #[test]
    fn structural_garbage_is_s005_not_a_panic() {
        let ir = relax_ir();
        let mut plan = compile(&ir, PlanMode::Optimized).unwrap();
        plan.facts = None;
        let n = plan.steps.len();
        if let Some(ExecStep::Goto { next, .. }) = plan.steps.first_mut() {
            *next = n + 7;
        }
        let a = analyze(&ir, &plan);
        assert!(
            a.diagnostics.iter().any(|d| d.code == DiagCode::S005),
            "{:?}",
            a.diagnostics
        );
    }
}

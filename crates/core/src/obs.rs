//! Convergence telemetry: publish strategy-level gauges into the
//! runtime's per-epoch profiles.
//!
//! The paper's evaluation reads convergence off per-phase message counts
//! (Figs. 5–6); this module adds the *algorithm-level* counterpart — how
//! big the frontier was, how many relaxations actually changed a value,
//! which Δ-bucket a phase drained — published into the same
//! [`EpochProfile`](dgp_am::EpochProfile) stream the runtime already
//! seals per epoch, and therefore into the metrics-JSON document the
//! harness exports.
//!
//! An [`Observer`] wraps a [`PatternEngine`] and remembers the engine's
//! counter snapshot at the previous publish, so each publish reports
//! *deltas* (relaxations this phase, not since the beginning of time).
//! Publishes must happen **inside** an epoch body — the runtime drains
//! pending gauges into the profile when the epoch seals, so a publish
//! after `ctx.epoch(..)` returns would be attributed to the *next* epoch.
//!
//! Engine counters are bumped by handler threads for as long as the epoch
//! runs, so a delta observed mid-epoch is a lower bound for the current
//! phase; the remainder is reported by the next publish. Frontier sizes
//! and bucket indices, which the strategy knows exactly, are exact.

use std::cell::Cell;

use dgp_am::AmCtx;

use crate::engine::{EngineStatsSnapshot, PatternEngine};

/// Gauge name for the number of frontier vertices a rank processed in the
/// phase (summed across ranks in the sealed profile).
pub const GAUGE_FRONTIER: &str = "frontier";
/// Gauge name for modifications that changed a property value since the
/// previous publish (the realized relaxation count; summed across ranks).
pub const GAUGE_RELAXATIONS: &str = "relaxations";
/// Gauge name for generator items expanded since the previous publish
/// (edges/vertices examined; summed across ranks).
pub const GAUGE_EXPANDED: &str = "expanded";
/// Gauge name for the Δ-bucket index a phase drained. Published by rank 0
/// only — the index is globally agreed, and the profile sums per-name, so
/// a per-rank publish would multiply it by the rank count.
pub const GAUGE_BUCKET: &str = "bucket";

/// Publishes per-epoch convergence gauges for one engine. One observer
/// per strategy invocation (it is rank-local state, like the strategy's
/// own loop variables); see the [module docs](self) for the attribution
/// semantics.
pub struct Observer {
    engine: PatternEngine,
    last: Cell<EngineStatsSnapshot>,
}

impl Observer {
    /// Observe `engine`, baselining its counters so the first publish
    /// reports only activity from this strategy onward.
    pub fn new(engine: &PatternEngine) -> Observer {
        Observer {
            engine: engine.clone(),
            last: Cell::new(engine.stats()),
        }
    }

    /// Publish the frontier size this rank processed plus the engine's
    /// relaxation/expansion deltas since the previous publish. Call from
    /// inside the epoch body.
    pub fn publish(&self, ctx: &AmCtx, frontier: usize) {
        let now = self.engine.stats();
        let d = now.since(&self.last.get());
        self.last.set(now);
        ctx.gauge(GAUGE_FRONTIER, frontier as f64);
        ctx.gauge(GAUGE_RELAXATIONS, d.modifications_changed as f64);
        ctx.gauge(GAUGE_EXPANDED, d.items_generated as f64);
    }

    /// [`publish`](Self::publish) plus the Δ-bucket index the phase
    /// drained (rank 0 publishes the index; see [`GAUGE_BUCKET`]).
    pub fn publish_bucket(&self, ctx: &AmCtx, bucket: usize, frontier: usize) {
        self.publish(ctx, frontier);
        if ctx.rank() == 0 {
            ctx.gauge(GAUGE_BUCKET, bucket as f64);
        }
    }
}

//! The pattern intermediate representation: a direct encoding of the
//! paper's grammar (§III).
//!
//! ```text
//! <pattern>   ::= 'pattern' '{' <properties> <actions> '}'
//! <property>  ::= <property-kind> '<' <type> '>' <name> ';'
//! <action>    ::= <name> '(' 'Vertex' <name> ')' '{' <generator>? <aliases>* <condition>+ '}'
//! <generator> ::= 'generator:' <name> 'in' <set-expr>
//! <set-expr>  ::= <pmap-access> | <built-in-set>
//! <built-in-set> ::= 'in_edges' | 'out_edges' | 'adj'
//! ```
//!
//! Aliases are "not variables but just shortcuts used to refer to
//! expressions" — in this embedding they are ordinary Rust `let` bindings
//! of [`Slot`] handles, with no IR footprint, exactly matching their
//! semantics ("using an alias is the same as pasting in the expression").
//!
//! Expressions themselves (condition tests, modification right-hand sides)
//! are opaque host-language closures, as in the paper ("arbitrary C++
//! code"); what the IR captures is precisely what the paper's analysis
//! needs: *which property maps are accessed, indexed by which
//! vertex-valued expression* — enough to compute localities (Def. 1), the
//! value dependency graph (Def. 2), and the communication plan (§IV-A).

use dgp_graph::VertexId;

/// Identifier of a registered property map within a pattern context.
pub type MapId = u32;

/// Whether a property map stores vertex or edge values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropertyKind {
    /// Values attached to vertices.
    Vertex,
    /// Values attached to edges.
    Edge,
}

/// A vertex-valued expression: something that names a vertex, usable both
/// as a value and as a *locality* (the vertex a value is accessed at).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Place {
    /// The action's input vertex `v`.
    Input,
    /// The generated vertex `u` (generators over `adj` or vertex sets).
    GenVertex,
    /// `src(e)` of the generated edge.
    GenSrc,
    /// `trg(e)` of the generated edge.
    GenTrg,
    /// `p[x]`: the vertex stored in vertex-valued vertex property `p` at
    /// place `x` (pointer-style indirection, e.g. `prnt[v]` in CC).
    MapAt(MapId, Box<Place>),
}

impl Place {
    /// Definition 1 (Locality), for places-as-values: the vertex at which
    /// this place's *identity* becomes known.
    ///
    /// * `v` is known at `v` (the action starts there);
    /// * the generated item is produced at `v`, so `u`, `e`, and therefore
    ///   `src(e)`/`trg(e)` are known at `v`;
    /// * `p[x]` is a property read, so it is known at `x`.
    pub fn known_at(&self) -> Place {
        match self {
            Place::Input => Place::Input,
            Place::GenVertex | Place::GenSrc | Place::GenTrg => Place::Input,
            Place::MapAt(_, x) => (**x).clone(),
        }
    }

    /// Depth of `MapAt` indirection (0 for the built-ins).
    pub fn indirections(&self) -> usize {
        match self {
            Place::MapAt(_, x) => 1 + x.indirections(),
            _ => 0,
        }
    }

    /// Convenience constructor for `p[x]`.
    pub fn map_at(map: MapId, x: Place) -> Place {
        Place::MapAt(map, Box::new(x))
    }
}

/// A declared read of a property value (one payload slot in the generated
/// messages).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ReadRef {
    /// Vertex property `map` at `place`; locality = `place`.
    VertexProp {
        /// The property map read.
        map: MapId,
        /// The vertex whose value is read.
        at: Place,
    },
    /// Edge property `map` at the generated edge; the edge and its property
    /// value are stored with the input vertex, so locality = `Input`.
    EdgeProp {
        /// The edge property map read.
        map: MapId,
    },
}

impl ReadRef {
    /// Definition 1 (Locality): the vertex this value must be read at.
    pub fn locality(&self) -> Place {
        match self {
            ReadRef::VertexProp { at, .. } => at.clone(),
            ReadRef::EdgeProp { .. } => Place::Input,
        }
    }

    /// The property map read.
    pub fn map(&self) -> MapId {
        match self {
            ReadRef::VertexProp { map, .. } | ReadRef::EdgeProp { map } => *map,
        }
    }
}

/// Handle to a declared read: index into the action's slot table, used by
/// condition/modification closures to fetch the gathered value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slot(pub usize);

/// How a modification applies its computed value — statically visible so
/// the verifier can distinguish last-writer-wins assignments from
/// order-insensitive reductions ("it is safe to call the insert function
/// on the set of vertices", §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModKind {
    /// `map[target] = computed` — replaces the stored value.
    #[default]
    Assign,
    /// `map[target].insert(computed)` — modification through a set value's
    /// interface; commutative, so concurrent applications cannot race.
    Insert,
}

/// One modification statement: `target_map[target] = f(reads...)`, where
/// the *leftmost* accessed value is the modified one (the paper's
/// modification rule) and everything else is a read.
#[derive(Debug, Clone)]
pub struct ModificationIr {
    /// The modified property map.
    pub map: MapId,
    /// The vertex whose value is modified.
    pub at: Place,
    /// Slots the right-hand side reads.
    pub reads: Vec<Slot>,
    /// How the computed value is applied (assignment vs. reduction).
    pub kind: ModKind,
}

/// One condition of the if/else-if chain.
#[derive(Debug, Clone)]
pub struct ConditionIr {
    /// Slots the boolean test reads.
    pub reads: Vec<Slot>,
    /// Modifications guarded by the test, in statement order.
    pub mods: Vec<ModificationIr>,
    /// Whether this condition is an `else if` of the previous one: skipped
    /// when the previous condition fired.
    pub is_else: bool,
}

/// The action's generator ("fan out" from the input vertex, §III-C). At
/// most one per action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorIr {
    /// No fan-out: the action works on `v` alone.
    None,
    /// The built-in `out_edges` set.
    OutEdges,
    /// The built-in `in_edges` set (requires bidirectional storage).
    InEdges,
    /// The built-in `adj` set (adjacent vertices).
    Adj,
    /// Vertices stored in a set-valued vertex property of `v`.
    MapSet(MapId),
    /// `out_edges` restricted by an edge-weight threshold: the storage-side
    /// realization of the paper's light/heavy edge split (§II-A). With
    /// `keep_light`, only edges with `weight ≤ threshold` are generated;
    /// otherwise only heavier ones. (`threshold_bits` is the `f64` bit
    /// pattern, keeping the IR `Eq`/`Hash`.)
    OutEdgesFiltered {
        /// The edge property map holding the weights.
        weight: MapId,
        /// The `f64` threshold, as raw bits.
        threshold_bits: u64,
        /// Keep `weight ≤ threshold` edges (otherwise the heavier ones).
        keep_light: bool,
    },
}

impl GeneratorIr {
    /// A light-edge filter (`weight ≤ threshold`).
    pub fn out_edges_light(weight: MapId, threshold: f64) -> GeneratorIr {
        GeneratorIr::OutEdgesFiltered {
            weight,
            threshold_bits: threshold.to_bits(),
            keep_light: true,
        }
    }

    /// A heavy-edge filter (`weight > threshold`).
    pub fn out_edges_heavy(weight: MapId, threshold: f64) -> GeneratorIr {
        GeneratorIr::OutEdgesFiltered {
            weight,
            threshold_bits: threshold.to_bits(),
            keep_light: false,
        }
    }
}

/// A complete analyzed action.
#[derive(Debug, Clone)]
pub struct ActionIr {
    /// The action's name (diagnostics and pattern lookup).
    pub name: String,
    /// The action's fan-out (at most one; `None` = work on `v` alone).
    pub generator: GeneratorIr,
    /// The declared reads; `Slot(i)` indexes this table.
    pub slots: Vec<ReadRef>,
    /// The if/else-if chain.
    pub conditions: Vec<ConditionIr>,
}

impl ActionIr {
    /// §III-C dependency rule: a modified value whose map is also read
    /// anywhere in the action marks the modified vertex as *dependent* (a
    /// work item is created for it). Returns, per condition, per
    /// modification, whether it creates dependencies.
    pub fn dependency_matrix(&self) -> Vec<Vec<bool>> {
        let read_maps: std::collections::HashSet<MapId> =
            self.slots.iter().map(|r| r.map()).collect();
        self.conditions
            .iter()
            .map(|c| c.mods.iter().map(|m| read_maps.contains(&m.map)).collect())
            .collect()
    }

    /// All distinct localities accessed by condition `ci`'s test.
    pub fn condition_localities(&self, ci: usize) -> Vec<Place> {
        let mut out = Vec::new();
        for &Slot(s) in &self.conditions[ci].reads {
            let l = self.slots[s].locality();
            if !out.contains(&l) {
                out.push(l);
            }
        }
        out
    }

    /// Validate the structural restrictions of §III: at most one generator
    /// (by construction), at least one condition, generator-dependent
    /// places only with a suitable generator, `MapAt` maps must be vertex
    /// maps (checked by the engine at registration), and all slot indices
    /// in range.
    pub fn validate(&self) -> Result<(), String> {
        if self.conditions.is_empty() {
            return Err(format!("action {:?} has no conditions", self.name));
        }
        if self.conditions.first().map(|c| c.is_else).unwrap_or(false) {
            return Err("first condition cannot be an else".into());
        }
        let check_place = |p: &Place| -> Result<(), String> {
            let mut cur = p;
            loop {
                match cur {
                    Place::GenVertex => {
                        if !matches!(self.generator, GeneratorIr::Adj | GeneratorIr::MapSet(_)) {
                            return Err(format!(
                                "action {:?} uses the generated vertex without a vertex generator",
                                self.name
                            ));
                        }
                        return Ok(());
                    }
                    Place::GenSrc | Place::GenTrg => {
                        if !matches!(
                            self.generator,
                            GeneratorIr::OutEdges
                                | GeneratorIr::InEdges
                                | GeneratorIr::OutEdgesFiltered { .. }
                        ) {
                            return Err(format!(
                                "action {:?} uses src/trg without an edge generator",
                                self.name
                            ));
                        }
                        return Ok(());
                    }
                    Place::MapAt(_, inner) => cur = inner,
                    Place::Input => return Ok(()),
                }
            }
        };
        for r in &self.slots {
            if let ReadRef::VertexProp { at, .. } = r {
                check_place(at)?;
            }
            if matches!(r, ReadRef::EdgeProp { .. })
                && !matches!(
                    self.generator,
                    GeneratorIr::OutEdges
                        | GeneratorIr::InEdges
                        | GeneratorIr::OutEdgesFiltered { .. }
                )
            {
                return Err(format!(
                    "action {:?} reads an edge property without an edge generator",
                    self.name
                ));
            }
        }
        for (ci, c) in self.conditions.iter().enumerate() {
            for &Slot(s) in &c.reads {
                if s >= self.slots.len() {
                    return Err(format!("condition {ci} reads undeclared slot {s}"));
                }
            }
            for m in &c.mods {
                check_place(&m.at)?;
                for &Slot(s) in &m.reads {
                    if s >= self.slots.len() {
                        return Err(format!(
                            "modification in condition {ci} reads undeclared slot {s}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for Place {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Place::Input => write!(f, "v"),
            Place::GenVertex => write!(f, "u"),
            Place::GenSrc => write!(f, "src(e)"),
            Place::GenTrg => write!(f, "trg(e)"),
            Place::MapAt(m, inner) => write!(f, "p{m}[{inner}]"),
        }
    }
}

impl std::fmt::Display for ReadRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadRef::VertexProp { map, at } => write!(f, "p{map}[{at}]"),
            ReadRef::EdgeProp { map } => write!(f, "p{map}[e]"),
        }
    }
}

/// Renders the action as paper-style pattern pseudo-source (closures shown
/// as opaque tests/expressions over their declared reads).
impl std::fmt::Display for ActionIr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}(Vertex v) {{", self.name)?;
        match self.generator {
            GeneratorIr::None => {}
            GeneratorIr::OutEdges => writeln!(f, "  generator: e in out_edges;")?,
            GeneratorIr::InEdges => writeln!(f, "  generator: e in in_edges;")?,
            GeneratorIr::Adj => writeln!(f, "  generator: u in adj;")?,
            GeneratorIr::MapSet(m) => writeln!(f, "  generator: u in p{m}[v];")?,
            GeneratorIr::OutEdgesFiltered {
                weight,
                threshold_bits,
                keep_light,
            } => writeln!(
                f,
                "  generator: e in out_edges where p{weight}[e] {} {};",
                if keep_light { "<=" } else { ">" },
                f64::from_bits(threshold_bits)
            )?,
        }
        for (ci, c) in self.conditions.iter().enumerate() {
            let reads: Vec<String> = c
                .reads
                .iter()
                .map(|&Slot(s)| self.slots[s].to_string())
                .collect();
            let kw = if c.is_else { "else if" } else { "if" };
            writeln!(f, "  {kw} (test#{ci}({})) {{", reads.join(", "))?;
            for m in &c.mods {
                let mreads: Vec<String> = m
                    .reads
                    .iter()
                    .map(|&Slot(s)| self.slots[s].to_string())
                    .collect();
                writeln!(f, "    p{}[{}] = expr({});", m.map, m.at, mreads.join(", "))?;
            }
            writeln!(f, "  }}")?;
        }
        write!(f, "}}")
    }
}

/// The generated item an action instance is currently working on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenItem {
    /// Generator `None`, or evaluation before fan-out.
    None,
    /// A generated vertex `u`.
    Vertex(VertexId),
    /// A generated edge with its endpoints and its storage index on the
    /// input vertex's rank (`eidx` addresses co-located edge properties;
    /// `incoming` selects the in-edge array).
    Edge {
        /// `src(e)`.
        src: VertexId,
        /// `trg(e)`.
        trg: VertexId,
        /// The edge's local storage index on the generating rank.
        eidx: u32,
        /// Whether `eidx` addresses the in-edge (rather than out-edge) array.
        incoming: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sssp_ir() -> ActionIr {
        // relax(v): generator e in out_edges;
        //   if dist[trg(e)] > dist[v] + weight[e] { dist[trg(e)] = dist[v] + weight[e] }
        let dist: MapId = 0;
        let weight: MapId = 1;
        ActionIr {
            name: "relax".into(),
            generator: GeneratorIr::OutEdges,
            slots: vec![
                ReadRef::VertexProp {
                    map: dist,
                    at: Place::GenTrg,
                },
                ReadRef::VertexProp {
                    map: dist,
                    at: Place::Input,
                },
                ReadRef::EdgeProp { map: weight },
            ],
            conditions: vec![ConditionIr {
                reads: vec![Slot(0), Slot(1), Slot(2)],
                mods: vec![ModificationIr {
                    map: dist,
                    at: Place::GenTrg,
                    reads: vec![Slot(1), Slot(2)],
                    kind: ModKind::Assign,
                }],
                is_else: false,
            }],
        }
    }

    #[test]
    fn localities_follow_definition_1() {
        assert_eq!(Place::Input.known_at(), Place::Input);
        assert_eq!(Place::GenTrg.known_at(), Place::Input);
        assert_eq!(Place::GenVertex.known_at(), Place::Input);
        let p = Place::map_at(3, Place::Input);
        assert_eq!(p.known_at(), Place::Input);
        let pp = Place::map_at(3, p.clone());
        assert_eq!(pp.known_at(), p);
        assert_eq!(pp.indirections(), 2);
    }

    #[test]
    fn read_localities() {
        let r = ReadRef::VertexProp {
            map: 0,
            at: Place::GenTrg,
        };
        assert_eq!(r.locality(), Place::GenTrg);
        let e = ReadRef::EdgeProp { map: 1 };
        assert_eq!(e.locality(), Place::Input);
    }

    #[test]
    fn sssp_dependency_detected() {
        // dist is both read and written -> the modification creates
        // dependencies (work items), per §III-C.
        let ir = sssp_ir();
        assert_eq!(ir.dependency_matrix(), vec![vec![true]]);
        ir.validate().unwrap();
    }

    #[test]
    fn write_only_map_creates_no_dependency() {
        let mut ir = sssp_ir();
        // Change the modification to target a map never read (id 7).
        ir.conditions[0].mods[0].map = 7;
        assert_eq!(ir.dependency_matrix(), vec![vec![false]]);
    }

    #[test]
    fn condition_localities_deduplicate() {
        let ir = sssp_ir();
        let locs = ir.condition_localities(0);
        assert_eq!(locs, vec![Place::GenTrg, Place::Input]);
    }

    #[test]
    fn renders_pattern_pseudo_source() {
        let ir = sssp_ir();
        let text = format!("{ir}");
        assert!(text.contains("relax(Vertex v)"), "{text}");
        assert!(text.contains("generator: e in out_edges;"));
        assert!(text.contains("if (test#0(p0[trg(e)], p0[v], p1[e]))"));
        assert!(text.contains("p0[trg(e)] = expr(p0[v], p1[e]);"));
    }

    #[test]
    fn validation_catches_misuse() {
        let mut ir = sssp_ir();
        ir.generator = GeneratorIr::None;
        assert!(ir.validate().is_err(), "src/trg without generator");

        let mut ir = sssp_ir();
        ir.conditions.clear();
        assert!(ir.validate().is_err(), "no conditions");

        let mut ir = sssp_ir();
        ir.conditions[0].reads.push(Slot(99));
        assert!(ir.validate().is_err(), "slot out of range");

        let mut ir = sssp_ir();
        ir.conditions[0].is_else = true;
        assert!(ir.validate().is_err(), "leading else");
    }
}

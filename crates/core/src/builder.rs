//! The embedded pattern language: build actions as data + closures.
//!
//! This is the Rust embedding of the paper's pattern grammar (§III). A
//! pattern is a set of property maps plus actions; an action is written
//! as:
//!
//! ```
//! use dgp_core::builder::ActionBuilder;
//! use dgp_core::ir::{GeneratorIr, Place};
//! use dgp_core::engine::Val;
//!
//! // pattern SSSP {
//! //   vertex-property<distance> dist;  edge-property<distance> weight;
//! //   relax(Vertex v) {
//! //     generator: e in out_edges;
//! //     if (dist[trg(e)] > dist[v] + weight[e])
//! //       dist[trg(e)] = dist[v] + weight[e];
//! //   }
//! // }
//! let (dist, weight) = (0, 1); // MapIds from PatternEngine::register_map
//! let mut b = ActionBuilder::new("relax", GeneratorIr::OutEdges);
//! let d_trg = b.read_vertex(dist, Place::GenTrg);
//! let d_v = b.read_vertex(dist, Place::Input);
//! let w_e = b.read_edge(weight);
//! b.cond(
//!     &[d_trg, d_v, w_e],
//!     move |e| e.f64(d_trg) > e.f64(d_v) + e.f64(w_e),
//! )
//! .assign(dist, Place::GenTrg, &[d_v, w_e], move |e, _old| {
//!     Val::F(e.f64(d_v) + e.f64(w_e))
//! });
//! let built = b.build().unwrap();
//! assert_eq!(built.ir.conditions.len(), 1);
//! ```
//!
//! Aliases from the paper's grammar are plain `let` bindings of [`Slot`]s
//! (the doc above binds `d_trg` etc.), true to their paste-in semantics.
//! The *leftmost-value-is-modified* rule is explicit here: the
//! [`CondBuilder::assign`]/[`CondBuilder::insert`] target is the modified
//! value, everything else is reads.

use std::sync::Arc;

use crate::engine::{EnvView, ModExec, ModOp, Val};
use crate::ir::{ActionIr, ConditionIr, GeneratorIr, MapId, ModificationIr, Place, ReadRef, Slot};
use crate::verify::{Diagnostic, Report};

/// A compiled condition test over the gathered payload.
pub type TestFn = Arc<dyn Fn(&EnvView<'_>) -> bool + Send + Sync>;

/// Why an action failed to build: the static verifier's error-severity
/// findings ([`crate::verify`], diagnostic codes `L001`–`P006`).
#[derive(Debug, Clone)]
pub struct BuildError {
    /// Every finding, errors first (warnings ride along for context).
    pub diagnostics: Vec<Diagnostic>,
}

impl BuildError {
    /// The verifier findings as a report.
    pub fn report(&self) -> Report {
        Report {
            diagnostics: self.diagnostics.clone(),
        }
    }
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "action failed verification:")?;
        for d in &self.diagnostics {
            write!(f, "\n  {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for BuildError {}

impl From<BuildError> for String {
    fn from(e: BuildError) -> String {
        e.to_string()
    }
}

/// An action ready for [`crate::engine::PatternEngine::add_action`]: the
/// analyzed IR plus the executable closures.
pub struct BuiltAction {
    /// The analyzed IR (inspect, plan, render).
    pub ir: ActionIr,
    /// Warning-severity verifier findings from [`ActionBuilder::build`]
    /// (an action with error-severity findings does not build at all).
    pub diagnostics: Vec<Diagnostic>,
    pub(crate) tests: Vec<TestFn>,
    pub(crate) mods: Vec<Vec<ModExec>>,
}

impl std::fmt::Debug for BuiltAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltAction")
            .field("ir", &self.ir)
            .field("diagnostics", &self.diagnostics)
            .finish_non_exhaustive()
    }
}

/// Builds one action of a pattern.
pub struct ActionBuilder {
    name: String,
    generator: GeneratorIr,
    slots: Vec<ReadRef>,
    conditions: Vec<ConditionIr>,
    tests: Vec<TestFn>,
    mods: Vec<Vec<ModExec>>,
}

impl ActionBuilder {
    /// Start an action named `name` with at most one generator (§III-C:
    /// "there can be only one generator, allowing only one level of fan
    /// out").
    pub fn new(name: impl Into<String>, generator: GeneratorIr) -> ActionBuilder {
        ActionBuilder {
            name: name.into(),
            generator,
            slots: Vec::new(),
            conditions: Vec::new(),
            tests: Vec::new(),
            mods: Vec::new(),
        }
    }

    /// Declare a read of vertex property `map` at `at`. Duplicate
    /// declarations return the same slot.
    pub fn read_vertex(&mut self, map: MapId, at: Place) -> Slot {
        let r = ReadRef::VertexProp { map, at };
        self.intern(r)
    }

    /// Declare a read of edge property `map` at the generated edge.
    pub fn read_edge(&mut self, map: MapId) -> Slot {
        self.intern(ReadRef::EdgeProp { map })
    }

    fn intern(&mut self, r: ReadRef) -> Slot {
        if let Some(i) = self.slots.iter().position(|s| *s == r) {
            Slot(i)
        } else {
            self.slots.push(r);
            Slot(self.slots.len() - 1)
        }
    }

    /// Add a condition (`if`). `reads` are the slots the test consults.
    pub fn cond(
        &mut self,
        reads: &[Slot],
        test: impl Fn(&EnvView<'_>) -> bool + Send + Sync + 'static,
    ) -> CondBuilder<'_> {
        self.push_condition(reads, test, false)
    }

    /// Add an `else if` of the previous condition: skipped when the
    /// previous condition fired.
    pub fn else_cond(
        &mut self,
        reads: &[Slot],
        test: impl Fn(&EnvView<'_>) -> bool + Send + Sync + 'static,
    ) -> CondBuilder<'_> {
        self.push_condition(reads, test, true)
    }

    fn push_condition(
        &mut self,
        reads: &[Slot],
        test: impl Fn(&EnvView<'_>) -> bool + Send + Sync + 'static,
        is_else: bool,
    ) -> CondBuilder<'_> {
        self.conditions.push(ConditionIr {
            reads: reads.to_vec(),
            mods: Vec::new(),
            is_else,
        });
        self.tests.push(Arc::new(test));
        self.mods.push(Vec::new());
        let idx = self.conditions.len() - 1;
        CondBuilder { b: self, idx }
    }

    /// Finish: validates the structural restrictions of §III and runs the
    /// full static verifier ([`crate::verify::verify_ir`]) over both plan
    /// modes. Error-severity findings reject the action; warnings are
    /// returned on [`BuiltAction::diagnostics`].
    pub fn build(self) -> Result<BuiltAction, BuildError> {
        let ir = ActionIr {
            name: self.name,
            generator: self.generator,
            slots: self.slots,
            conditions: self.conditions,
        };
        let report = crate::verify::verify_ir(&ir);
        if report.has_errors() {
            return Err(BuildError {
                diagnostics: report.diagnostics,
            });
        }
        Ok(BuiltAction {
            ir,
            diagnostics: report.diagnostics,
            tests: self.tests,
            mods: self.mods,
        })
    }
}

/// Adds modifications to one condition.
pub struct CondBuilder<'a> {
    b: &'a mut ActionBuilder,
    idx: usize,
}

impl<'a> CondBuilder<'a> {
    /// `map[at] = compute(env, old)` — an assignment whose leftmost value
    /// is modified; `reads` are the slots the right-hand side consults.
    pub fn assign(
        self,
        map: MapId,
        at: Place,
        reads: &[Slot],
        compute: impl Fn(&EnvView<'_>, Val) -> Val + Send + Sync + 'static,
    ) -> Self {
        self.push(map, at, reads, ModOp::Assign, compute)
    }

    /// `map[at].insert(compute(env))` — the paper's modification through a
    /// set value's interface ("it is safe to call the insert function on
    /// the set of vertices").
    pub fn insert(
        self,
        map: MapId,
        at: Place,
        reads: &[Slot],
        compute: impl Fn(&EnvView<'_>, Val) -> Val + Send + Sync + 'static,
    ) -> Self {
        self.push(map, at, reads, ModOp::Insert, compute)
    }

    fn push(
        self,
        map: MapId,
        at: Place,
        reads: &[Slot],
        op: ModOp,
        compute: impl Fn(&EnvView<'_>, Val) -> Val + Send + Sync + 'static,
    ) -> Self {
        self.b.conditions[self.idx].mods.push(ModificationIr {
            map,
            at,
            reads: reads.to_vec(),
            kind: op,
        });
        self.b.mods[self.idx].push(ModExec {
            op,
            compute: Arc::new(compute),
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{compile, PlanMode};

    #[test]
    fn duplicate_reads_share_slots() {
        let mut b = ActionBuilder::new("a", GeneratorIr::OutEdges);
        let s1 = b.read_vertex(0, Place::Input);
        let s2 = b.read_vertex(0, Place::Input);
        let s3 = b.read_vertex(0, Place::GenTrg);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn built_sssp_compiles_to_one_message() {
        let (dist, weight) = (0, 1);
        let mut b = ActionBuilder::new("relax", GeneratorIr::OutEdges);
        let d_trg = b.read_vertex(dist, Place::GenTrg);
        let d_v = b.read_vertex(dist, Place::Input);
        let w_e = b.read_edge(weight);
        b.cond(&[d_trg, d_v, w_e], move |e| {
            e.f64(d_trg) > e.f64(d_v) + e.f64(w_e)
        })
        .assign(dist, Place::GenTrg, &[d_v, w_e], move |e, _| {
            Val::F(e.f64(d_v) + e.f64(w_e))
        });
        let built = b.build().unwrap();
        let plan = compile(&built.ir, PlanMode::Optimized).unwrap();
        assert_eq!(plan.comm_plan().messages, 1);
    }

    #[test]
    fn invalid_actions_are_rejected() {
        // No conditions.
        let b = ActionBuilder::new("empty", GeneratorIr::None);
        assert!(b.build().is_err());

        // Edge read without an edge generator.
        let mut b = ActionBuilder::new("bad", GeneratorIr::Adj);
        let w = b.read_edge(0);
        b.cond(&[w], move |e| e.f64(w) > 0.0);
        assert!(b.build().is_err());
    }

    #[test]
    fn else_chains_recorded() {
        let mut b = ActionBuilder::new("c", GeneratorIr::None);
        let s = b.read_vertex(0, Place::Input);
        b.cond(&[s], move |e| e.u64(s) == 0)
            .assign(1, Place::Input, &[], |_, _| Val::U(1));
        b.else_cond(&[s], move |e| e.u64(s) == 1)
            .assign(1, Place::Input, &[], |_, _| Val::U(2));
        let built = b.build().unwrap();
        assert!(!built.ir.conditions[0].is_else);
        assert!(built.ir.conditions[1].is_else);
    }
}

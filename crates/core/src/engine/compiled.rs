//! The plan→closure compiler (INTERNALS §14): monomorphize a
//! proof-carrying [`crate::plan::ExecPlan`] into a chain of typed Rust
//! closures the engine runs instead of the step interpreter.
//!
//! The compiler consumes the same [`crate::plan::VerifiedFacts`] proof
//! that licenses guard elision, and goes one step further: where the
//! interpreter *skips* the per-message resolve + locality check on the
//! proof's say-so, compiled code never contains them. Each step becomes
//! one closure with everything the interpreter re-derives per message
//! pre-resolved at `add_action` time:
//!
//! * slot lists and frame offsets are captured as direct indices;
//! * property-map accessors are devirtualized — the type-erased
//!   [`ErasedMap`] is downcast once to its concrete
//!   [`AtomicMapHandle`]/[`EdgeMapHandle`]/[`SetMapHandle`] and the
//!   closure captures the *typed* map, so reads and read-modify-writes
//!   monomorphize through [`ValCodec`] instead of dynamic dispatch;
//! * the merged-step shape test (the §IV-B atomic fast path) runs once
//!   here, not per message: an eligible `EvalModify` compiles straight to
//!   a fused typed `AtomicVertexMap::update`;
//! * generator constants (the light/heavy threshold of §II-A) are
//!   pre-evaluated out of their bit-pattern encoding.
//!
//! Condition tests and modification right-hand sides stay the opaque
//! closures the pattern author wrote ([`crate::builder`]); they are leaf
//! calls of the compiled chain. Anything the compiler cannot prove it
//! supports — a map handle it does not recognize, a hint mismatch —
//! reports a [`JitFallback`] and the action transparently stays on the
//! interpreter, which remains the semantics oracle. Soundness argument:
//! compiled code reads and writes only at `msg.at`, exactly like the
//! guard-elided interpreter path, and the proof pins every access site's
//! Def. 1 locality to the current step's place (see
//! [`crate::plan::soundness`]).

use std::sync::Arc;

use dgp_am::{AmCtx, SpanKind};
use dgp_graph::properties::{EdgeMap, LockedVertexMap};
use dgp_graph::VertexId;

use super::exec::{ActionMsg, CompiledAction, EngineInner, Resolver, SlotReader};
use super::maps::{AtomicMapHandle, EdgeMapHandle, ErasedMap, SetMapHandle, ValCodec};
use super::value::{EnvView, Val};
use super::{EngineConfig, EngineStats, SyncMode};
use crate::ir::{ActionIr, GenItem, GeneratorIr, ModKind, ReadRef};
use crate::plan::{ExecPlan, ExecStep};

/// What a compiled step tells the driver loop to do next.
pub(crate) enum Ctl {
    /// Continue at this step, same vertex.
    Next(u32),
    /// Move to `target` (the compiled `Goto`): the driver sends one
    /// message when it is a different vertex, or continues inline.
    Hop {
        /// The resolved destination vertex.
        target: VertexId,
        /// Step to execute on arrival.
        pc: u32,
    },
    /// The instance is finished.
    Done,
}

/// One compiled plan step.
pub(crate) type StepFn = Box<dyn Fn(&EngineInner, &AmCtx, &mut ActionMsg) -> Ctl + Send + Sync>;

/// A devirtualized slot read: fills one payload slot at `msg.at`.
type ReadFn = Arc<dyn Fn(&EngineInner, &ActionMsg) -> Val + Send + Sync>;

/// A devirtualized modification: applies at the given vertex, returns
/// whether the target changed.
type ApplyFn = Box<dyn Fn(&EngineInner, &EnvView<'_>, VertexId) -> bool + Send + Sync>;

/// The compiled generator: typed maps pre-bound, constants pre-evaluated.
pub(crate) enum JitGen {
    /// No fan-out.
    None,
    /// All out-edges.
    OutEdges,
    /// All in-edges.
    InEdges,
    /// Adjacent vertices.
    Adj,
    /// Vertices in a set-valued property, read through the typed map.
    MapSet(LockedVertexMap<Vec<VertexId>>),
    /// Out-edges filtered by weight, threshold decoded from its bit
    /// pattern once.
    OutEdgesFiltered {
        /// The typed weight map.
        weights: EdgeMap<f64>,
        /// Pre-evaluated threshold.
        threshold: f64,
        /// Keep `weight <= threshold` edges (otherwise heavier ones).
        keep_light: bool,
    },
}

/// A fully compiled action: the step program as native closures.
pub(crate) struct JitProgram {
    /// One closure per plan step, same indices as the plan.
    pub(crate) steps: Vec<StepFn>,
    /// The compiled generator.
    pub(crate) gen: JitGen,
}

/// The value type a registered map stores, as the compiler's supported
/// [`ValCodec`] instantiations name them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecKind {
    /// `u64`.
    U64,
    /// `u32`.
    U32,
    /// `usize`.
    Usize,
    /// `i64`.
    I64,
    /// `f64`.
    F64,
    /// `bool`.
    Bool,
    /// `Option<VertexId>`.
    OptVertex,
}

/// What kind of map a pattern's `MapId` refers to — the static stand-in
/// for the runtime downcast, so [`static_compilability`] can run without
/// an engine (the `--lint` seam).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapHint {
    /// An atomic vertex property map of the given value type.
    Vertex(CodecKind),
    /// An edge property map of the given value type.
    Edge(CodecKind),
    /// A set-valued vertex map (`Vec<VertexId>` per vertex).
    Set,
}

/// The access the compiler was trying to devirtualize when it gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapAccess {
    /// A vertex-property slot read.
    VertexRead,
    /// An edge-property slot read.
    EdgeRead,
    /// An `Assign` modification target.
    Assign,
    /// An `Insert` modification target.
    Insert,
    /// A `MapSet` generator enumeration.
    SetEnumerate,
    /// The weight map of a filtered-edges generator.
    EdgeFilter,
}

/// Why an action is running on the interpreter instead of compiled code.
/// Inspect via [`super::PatternEngine::compile_fallback`]; `--lint`
/// renders these in its per-plan facts table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JitFallback {
    /// [`EngineConfig::compile_plans`] is off.
    Disabled,
    /// [`EngineConfig::validate_locality`] forces the guarded
    /// interpreter (the validator needs the checks to run).
    ValidatesLocality,
    /// [`EngineConfig::elide_verified_checks`] is off — the caller asked
    /// for the guarded path, which only the interpreter has.
    GuardsRequested,
    /// The plan carries no [`crate::plan::VerifiedFacts`] proof; without
    /// it the compiler may not assume locality/def-use soundness.
    NoFacts,
    /// A `MapId` beyond the registered maps (registration-order bug).
    UnregisteredMap(usize),
    /// The map behind this `MapId` is not a handle/type the compiler
    /// supports for the given access.
    UnsupportedMap {
        /// The offending `MapId`.
        map: usize,
        /// The access that could not be devirtualized.
        access: MapAccess,
    },
}

impl std::fmt::Display for JitFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JitFallback::Disabled => write!(f, "compile_plans off"),
            JitFallback::ValidatesLocality => write!(f, "validate_locality set"),
            JitFallback::GuardsRequested => write!(f, "guarded path requested"),
            JitFallback::NoFacts => write!(f, "plan carries no proof"),
            JitFallback::UnregisteredMap(m) => write!(f, "map {m} not registered"),
            JitFallback::UnsupportedMap { map, access } => {
                write!(f, "map {map} unsupported for {access:?}")
            }
        }
    }
}

/// Try to downcast `maps[$mid]` to an [`AtomicMapHandle`] over any
/// supported codec and run `$body` with `$m` bound to the *typed*
/// [`dgp_graph::properties::AtomicVertexMap`] clone — `$body` is
/// monomorphized once per value type.
macro_rules! with_atomic {
    ($maps:expr, $mid:expr, $access:expr, |$m:ident| $body:expr) => {{
        let mid: usize = $mid;
        let any = $maps
            .get(mid)
            .ok_or(JitFallback::UnregisteredMap(mid))?
            .as_any();
        if let Some(h) = any.downcast_ref::<AtomicMapHandle<u64>>() {
            let $m = h.map.clone();
            $body
        } else if let Some(h) = any.downcast_ref::<AtomicMapHandle<u32>>() {
            let $m = h.map.clone();
            $body
        } else if let Some(h) = any.downcast_ref::<AtomicMapHandle<usize>>() {
            let $m = h.map.clone();
            $body
        } else if let Some(h) = any.downcast_ref::<AtomicMapHandle<i64>>() {
            let $m = h.map.clone();
            $body
        } else if let Some(h) = any.downcast_ref::<AtomicMapHandle<f64>>() {
            let $m = h.map.clone();
            $body
        } else if let Some(h) = any.downcast_ref::<AtomicMapHandle<bool>>() {
            let $m = h.map.clone();
            $body
        } else if let Some(h) = any.downcast_ref::<AtomicMapHandle<Option<VertexId>>>() {
            let $m = h.map.clone();
            $body
        } else {
            return Err(JitFallback::UnsupportedMap {
                map: mid,
                access: $access,
            });
        }
    }};
}

/// As [`with_atomic!`], for [`EdgeMapHandle`]s.
macro_rules! with_edge {
    ($maps:expr, $mid:expr, $access:expr, |$m:ident| $body:expr) => {{
        let mid: usize = $mid;
        let any = $maps
            .get(mid)
            .ok_or(JitFallback::UnregisteredMap(mid))?
            .as_any();
        if let Some(h) = any.downcast_ref::<EdgeMapHandle<u64>>() {
            let $m = h.map.clone();
            $body
        } else if let Some(h) = any.downcast_ref::<EdgeMapHandle<u32>>() {
            let $m = h.map.clone();
            $body
        } else if let Some(h) = any.downcast_ref::<EdgeMapHandle<usize>>() {
            let $m = h.map.clone();
            $body
        } else if let Some(h) = any.downcast_ref::<EdgeMapHandle<i64>>() {
            let $m = h.map.clone();
            $body
        } else if let Some(h) = any.downcast_ref::<EdgeMapHandle<f64>>() {
            let $m = h.map.clone();
            $body
        } else if let Some(h) = any.downcast_ref::<EdgeMapHandle<bool>>() {
            let $m = h.map.clone();
            $body
        } else if let Some(h) = any.downcast_ref::<EdgeMapHandle<Option<VertexId>>>() {
            let $m = h.map.clone();
            $body
        } else {
            return Err(JitFallback::UnsupportedMap {
                map: mid,
                access: $access,
            });
        }
    }};
}

fn set_map(
    maps: &[Arc<dyn ErasedMap>],
    mid: usize,
    access: MapAccess,
) -> Result<LockedVertexMap<Vec<VertexId>>, JitFallback> {
    maps.get(mid)
        .ok_or(JitFallback::UnregisteredMap(mid))?
        .as_any()
        .downcast_ref::<SetMapHandle>()
        .map(|h| h.map.clone())
        .ok_or(JitFallback::UnsupportedMap { map: mid, access })
}

/// The config/proof gate, in diagnostic order: knobs first, then the
/// proof. Identical on every rank (the config is part of collective
/// construction), so either all ranks compile an action or none do.
fn gate(cfg: &EngineConfig, plan: &ExecPlan) -> Result<(), JitFallback> {
    if !cfg.compile_plans {
        return Err(JitFallback::Disabled);
    }
    if cfg.validate_locality {
        return Err(JitFallback::ValidatesLocality);
    }
    if !cfg.elide_verified_checks {
        return Err(JitFallback::GuardsRequested);
    }
    if plan.facts.is_none() {
        return Err(JitFallback::NoFacts);
    }
    Ok(())
}

/// Compile `action` against the maps registered so far. Called once from
/// [`super::PatternEngine::add_action`]; an `Err` is not a failure, it is
/// the (recorded) decision to stay on the interpreter.
pub(crate) fn compile(
    action: &CompiledAction,
    maps: &[Arc<dyn ErasedMap>],
    cfg: &EngineConfig,
) -> Result<JitProgram, JitFallback> {
    gate(cfg, &action.plan)?;
    let gen = compile_gen(&action.ir.generator, maps)?;
    let steps = action
        .plan
        .steps
        .iter()
        .map(|step| compile_step(action, maps, cfg, step))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(JitProgram { steps, gen })
}

fn compile_gen(g: &GeneratorIr, maps: &[Arc<dyn ErasedMap>]) -> Result<JitGen, JitFallback> {
    Ok(match g {
        GeneratorIr::None => JitGen::None,
        GeneratorIr::OutEdges => JitGen::OutEdges,
        GeneratorIr::InEdges => JitGen::InEdges,
        GeneratorIr::Adj => JitGen::Adj,
        GeneratorIr::MapSet(m) => {
            JitGen::MapSet(set_map(maps, *m as usize, MapAccess::SetEnumerate)?)
        }
        GeneratorIr::OutEdgesFiltered {
            weight,
            threshold_bits,
            keep_light,
        } => {
            let mid = *weight as usize;
            let h = maps
                .get(mid)
                .ok_or(JitFallback::UnregisteredMap(mid))?
                .as_any()
                .downcast_ref::<EdgeMapHandle<f64>>()
                .ok_or(JitFallback::UnsupportedMap {
                    map: mid,
                    access: MapAccess::EdgeFilter,
                })?;
            JitGen::OutEdgesFiltered {
                weights: h.map.clone(),
                threshold: f64::from_bits(*threshold_bits),
                keep_light: *keep_light,
            }
        }
    })
}

/// Devirtualize one slot read. Compiled code runs only under an accepted
/// proof, so reads go straight to `msg.at` — the proof pins the site's
/// Def. 1 locality to the current step's place.
fn compile_read(
    action: &CompiledAction,
    maps: &[Arc<dyn ErasedMap>],
    slot: usize,
) -> Result<ReadFn, JitFallback> {
    match &action.readers[slot] {
        SlotReader::Vertex { map, .. } => {
            with_atomic!(maps, *map, MapAccess::VertexRead, |m| Ok(Arc::new(
                move |inner: &EngineInner, msg: &ActionMsg| m.get(inner.rank, msg.at).to_val()
            )
                as ReadFn))
        }
        SlotReader::Edge { map } => {
            with_edge!(maps, *map, MapAccess::EdgeRead, |m| Ok(Arc::new(
                move |inner: &EngineInner, msg: &ActionMsg| match msg.gen {
                    GenItem::Edge { eidx, incoming, .. } =>
                        if incoming {
                            m.get_in(inner.rank, eidx as usize).to_val()
                        } else {
                            m.get_out(inner.rank, eidx as usize).to_val()
                        },
                    other => panic!("edge property read without a generated edge ({other:?})"),
                }
            )
                as ReadFn))
        }
    }
}

fn compile_reads(
    action: &CompiledAction,
    maps: &[Arc<dyn ErasedMap>],
    slots: &[usize],
) -> Result<Vec<(usize, ReadFn)>, JitFallback> {
    slots
        .iter()
        .map(|&s| Ok((s, compile_read(action, maps, s)?)))
        .collect()
}

/// Devirtualize one modification of condition `cond`, paired with its
/// dependency-rule flag.
fn compile_applier(
    action: &CompiledAction,
    maps: &[Arc<dyn ErasedMap>],
    cond: usize,
    mi: usize,
) -> Result<(ApplyFn, bool), JitFallback> {
    let m = &action.ir.conditions[cond].mods[mi];
    let exec = &action.mods[cond][mi];
    let compute = exec.compute.clone();
    let dep = action.dep[cond][mi];
    match exec.op {
        // `new != old` compares at the `Val` level, like the interpreter:
        // the change test must not be sharper (or blunter) than the
        // erased one, including the NaN-never-equal corner.
        ModKind::Assign => with_atomic!(maps, m.map as usize, MapAccess::Assign, |tm| Ok((
            Box::new(
                move |inner: &EngineInner, view: &EnvView<'_>, at: VertexId| {
                    let old = tm.get(inner.rank, at).to_val();
                    let new = compute(view, old);
                    if new != old {
                        tm.set(inner.rank, at, ValCodec::from_val(new));
                        true
                    } else {
                        false
                    }
                }
            ) as ApplyFn,
            dep
        ))),
        ModKind::Insert => {
            let sm = set_map(maps, m.map as usize, MapAccess::Insert)?;
            Ok((
                Box::new(
                    move |inner: &EngineInner, view: &EnvView<'_>, at: VertexId| {
                        let u = compute(view, Val::Unset).as_vertex();
                        sm.with_mut(inner.rank, at, |s| {
                            if s.contains(&u) {
                                false
                            } else {
                                s.push(u);
                                true
                            }
                        })
                    },
                ) as ApplyFn,
                dep,
            ))
        }
    }
}

fn compile_appliers(
    action: &CompiledAction,
    maps: &[Arc<dyn ErasedMap>],
    cond: usize,
    mods: &[usize],
) -> Result<Vec<(ApplyFn, bool)>, JitFallback> {
    mods.iter()
        .map(|&mi| compile_applier(action, maps, cond, mi))
        .collect()
}

/// Run a compiled modification group under the already-held vertex lock:
/// apply each modification, bump the change counters, drop the lock, and
/// only then fire the dependency hook (the interpreter's `apply_group`
/// ordering).
fn apply_all(
    inner: &EngineInner,
    ctx: &AmCtx,
    appliers: &[(ApplyFn, bool)],
    msg: &ActionMsg,
    guard: parking_lot::MutexGuard<'_, ()>,
) {
    let mut dep_changed = false;
    for (apply, dep) in appliers {
        let changed = {
            let view = EnvView {
                env: &msg.env,
                v: msg.v,
                gen: msg.gen,
            };
            apply(inner, &view, msg.at)
        };
        EngineStats::bump(if changed {
            &inner.stats.modifications_changed
        } else {
            &inner.stats.modifications_unchanged
        });
        if changed && *dep {
            dep_changed = true;
        }
    }
    drop(guard);
    if dep_changed {
        inner.fire_hook(ctx, msg.action, msg.at);
    }
}

fn compile_step(
    action: &CompiledAction,
    maps: &[Arc<dyn ErasedMap>],
    cfg: &EngineConfig,
    step: &ExecStep,
) -> Result<StepFn, JitFallback> {
    Ok(match step {
        // The resolver specializes per place kind; the driver loop turns
        // the `Hop` into a coalesced send or an inline continuation.
        ExecStep::Goto { to, next } => {
            let next = *next as u32;
            match action.resolvers[*to] {
                Resolver::Input => Box::new(
                    move |_i: &EngineInner, _c: &AmCtx, msg: &mut ActionMsg| Ctl::Hop {
                        target: msg.v,
                        pc: next,
                    },
                ),
                Resolver::GenVertex => Box::new(move |_i, _c, msg: &mut ActionMsg| Ctl::Hop {
                    target: match msg.gen {
                        GenItem::Vertex(u) => u,
                        other => panic!("generated vertex expected, found {other:?}"),
                    },
                    pc: next,
                }),
                Resolver::GenSrc => Box::new(move |_i, _c, msg: &mut ActionMsg| Ctl::Hop {
                    target: match msg.gen {
                        GenItem::Edge { src, .. } => src,
                        other => panic!("generated edge expected, found {other:?}"),
                    },
                    pc: next,
                }),
                Resolver::GenTrg => Box::new(move |_i, _c, msg: &mut ActionMsg| Ctl::Hop {
                    target: match msg.gen {
                        GenItem::Edge { trg, .. } => trg,
                        other => panic!("generated edge expected, found {other:?}"),
                    },
                    pc: next,
                }),
                Resolver::FromSlot(s) => Box::new(move |_i, _c, msg: &mut ActionMsg| Ctl::Hop {
                    target: msg.env.get(s).as_vertex(),
                    pc: next,
                }),
            }
        }
        ExecStep::Gather { slots, next } => {
            let rds = compile_reads(action, maps, slots)?;
            let next = *next as u32;
            let n = rds.len() as u64;
            Box::new(
                move |inner: &EngineInner, ctx: &AmCtx, msg: &mut ActionMsg| {
                    let _s = ctx
                        .span(SpanKind::Gather, "engine.gather")
                        .map(|s| s.args(msg.action as u64, n));
                    for (slot, rd) in &rds {
                        let val = rd(inner, msg);
                        msg.env.set(*slot, val);
                    }
                    Ctl::Next(next)
                },
            )
        }
        ExecStep::Eval {
            cond,
            local_slots,
            on_true,
            on_false,
        } => {
            let rds = compile_reads(action, maps, local_slots)?;
            let test = action.tests[*cond].clone();
            let cond_u = *cond as u64;
            let (on_true, on_false) = (*on_true as u32, *on_false as u32);
            Box::new(
                move |inner: &EngineInner, ctx: &AmCtx, msg: &mut ActionMsg| {
                    let _s = ctx
                        .span(SpanKind::Eval, "engine.eval")
                        .map(|s| s.args(msg.action as u64, cond_u));
                    for (slot, rd) in &rds {
                        let val = rd(inner, msg);
                        msg.env.set(*slot, val);
                    }
                    let t = {
                        let view = EnvView {
                            env: &msg.env,
                            v: msg.v,
                            gen: msg.gen,
                        };
                        test(&view)
                    };
                    EngineStats::bump(if t {
                        &inner.stats.conditions_true
                    } else {
                        &inner.stats.conditions_false
                    });
                    Ctl::Next(if t { on_true } else { on_false })
                },
            )
        }
        ExecStep::EvalModify {
            cond,
            local_slots,
            mods,
            on_true,
            on_false,
        } => compile_eval_modify(
            action,
            maps,
            cfg,
            *cond,
            local_slots,
            mods,
            *on_true as u32,
            *on_false as u32,
        )?,
        ExecStep::ModifyGroup {
            cond,
            local_slots,
            mods,
            next,
        } => {
            let rds = compile_reads(action, maps, local_slots)?;
            let appliers = compile_appliers(action, maps, *cond, mods)?;
            let cond_u = *cond as u64;
            let next = *next as u32;
            Box::new(
                move |inner: &EngineInner, ctx: &AmCtx, msg: &mut ActionMsg| {
                    let _s = ctx
                        .span(SpanKind::Eval, "engine.modify")
                        .map(|s| s.args(msg.action as u64, cond_u));
                    let li = inner.graph.shard(inner.rank).local_of(msg.at);
                    let guard = inner.lock_map.guard(li);
                    for (slot, rd) in &rds {
                        let val = rd(inner, msg);
                        msg.env.set(*slot, val);
                    }
                    apply_all(inner, ctx, &appliers, msg, guard);
                    Ctl::Next(next)
                },
            )
        }
        ExecStep::End => Box::new(|_i: &EngineInner, _c: &AmCtx, _m: &mut ActionMsg| Ctl::Done),
    })
}

/// Compile the merged evaluate-and-modify step. The §IV-B shape test the
/// interpreter performs per message runs once here: an eligible step
/// fuses into a single typed atomic read-modify-write, everything else
/// compiles the lock-map path.
#[allow(clippy::too_many_arguments)]
fn compile_eval_modify(
    action: &CompiledAction,
    maps: &[Arc<dyn ErasedMap>],
    cfg: &EngineConfig,
    cond: usize,
    local_slots: &[usize],
    mods: &[usize],
    on_true: u32,
    on_false: u32,
) -> Result<StepFn, JitFallback> {
    if cfg.sync == SyncMode::Atomic && mods.len() == 1 && local_slots.len() == 1 {
        let mi = mods[0];
        let m = &action.ir.conditions[cond].mods[mi];
        let slot = local_slots[0];
        let slot_matches = matches!(
            &action.readers[slot],
            SlotReader::Vertex { map, resolver }
                if *map == m.map as usize
                    && *resolver == action.mod_target_resolvers[cond][mi]
        );
        if slot_matches && action.mods[cond][mi].op == ModKind::Assign {
            let test = action.tests[cond].clone();
            let compute = action.mods[cond][mi].compute.clone();
            let dep = action.dep[cond][mi];
            let cond_u = cond as u64;
            return with_atomic!(maps, m.map as usize, MapAccess::Assign, |tm| Ok(Box::new(
                move |inner: &EngineInner, ctx: &AmCtx, msg: &mut ActionMsg| {
                    let _s = ctx
                        .span(SpanKind::Eval, "engine.eval_modify")
                        .map(|s| s.args(msg.action as u64, cond_u));
                    let (v_in, gen) = (msg.v, msg.gen);
                    let env_base = msg.env;
                    let out = tm.update(inner.rank, msg.at, |old| {
                        let mut env = env_base;
                        env.set(slot, old.to_val());
                        let view = EnvView {
                            env: &env,
                            v: v_in,
                            gen,
                        };
                        if test(&view) {
                            ValCodec::from_val(compute(&view, old.to_val()))
                        } else {
                            old
                        }
                    });
                    msg.env.set(slot, out.new.to_val());
                    EngineStats::bump(if out.changed {
                        &inner.stats.conditions_true
                    } else {
                        &inner.stats.conditions_false
                    });
                    EngineStats::bump(if out.changed {
                        &inner.stats.modifications_changed
                    } else {
                        &inner.stats.modifications_unchanged
                    });
                    if out.changed && dep {
                        inner.fire_hook(ctx, msg.action, msg.at);
                    }
                    Ctl::Next(if out.changed { on_true } else { on_false })
                }
            )
                as StepFn));
        }
    }

    let rds = compile_reads(action, maps, local_slots)?;
    let appliers = compile_appliers(action, maps, cond, mods)?;
    let test = action.tests[cond].clone();
    let cond_u = cond as u64;
    Ok(Box::new(
        move |inner: &EngineInner, ctx: &AmCtx, msg: &mut ActionMsg| {
            let _s = ctx
                .span(SpanKind::Eval, "engine.eval_modify")
                .map(|s| s.args(msg.action as u64, cond_u));
            let li = inner.graph.shard(inner.rank).local_of(msg.at);
            let guard = inner.lock_map.guard(li);
            for (slot, rd) in &rds {
                let val = rd(inner, msg);
                msg.env.set(*slot, val);
            }
            let fired = {
                let view = EnvView {
                    env: &msg.env,
                    v: msg.v,
                    gen: msg.gen,
                };
                test(&view)
            };
            EngineStats::bump(if fired {
                &inner.stats.conditions_true
            } else {
                &inner.stats.conditions_false
            });
            if fired {
                apply_all(inner, ctx, &appliers, msg, guard);
            }
            Ctl::Next(if fired { on_true } else { on_false })
        },
    ))
}

/// Would the compiler accept this action, given only static information?
/// The runtime compiler ([`compile`]) downcasts live map handles; tools
/// without an engine — `experiments --lint` foremost — pass the maps'
/// declared [`MapHint`]s instead. Checks the proof first (a factless plan
/// must never reach the JIT), then every map access the plan performs
/// against its hint. `Ok(())` means a default-config engine whose
/// registered maps match the hints will compile the action.
pub fn static_compilability(
    ir: &ActionIr,
    plan: &ExecPlan,
    maps: &[MapHint],
) -> Result<(), JitFallback> {
    if plan.facts.is_none() {
        return Err(JitFallback::NoFacts);
    }
    let hint = |mid: usize| {
        maps.get(mid)
            .copied()
            .ok_or(JitFallback::UnregisteredMap(mid))
    };
    for r in &ir.slots {
        match r {
            ReadRef::VertexProp { map, .. } => {
                let mid = *map as usize;
                if !matches!(hint(mid)?, MapHint::Vertex(_)) {
                    return Err(JitFallback::UnsupportedMap {
                        map: mid,
                        access: MapAccess::VertexRead,
                    });
                }
            }
            ReadRef::EdgeProp { map } => {
                let mid = *map as usize;
                if !matches!(hint(mid)?, MapHint::Edge(_)) {
                    return Err(JitFallback::UnsupportedMap {
                        map: mid,
                        access: MapAccess::EdgeRead,
                    });
                }
            }
        }
    }
    for c in &ir.conditions {
        for m in &c.mods {
            let mid = m.map as usize;
            match m.kind {
                ModKind::Assign => {
                    if !matches!(hint(mid)?, MapHint::Vertex(_)) {
                        return Err(JitFallback::UnsupportedMap {
                            map: mid,
                            access: MapAccess::Assign,
                        });
                    }
                }
                ModKind::Insert => {
                    if hint(mid)? != MapHint::Set {
                        return Err(JitFallback::UnsupportedMap {
                            map: mid,
                            access: MapAccess::Insert,
                        });
                    }
                }
            }
        }
    }
    match ir.generator {
        GeneratorIr::MapSet(m) => {
            let mid = m as usize;
            if hint(mid)? != MapHint::Set {
                return Err(JitFallback::UnsupportedMap {
                    map: mid,
                    access: MapAccess::SetEnumerate,
                });
            }
        }
        GeneratorIr::OutEdgesFiltered { weight, .. } => {
            let mid = weight as usize;
            if hint(mid)? != MapHint::Edge(CodecKind::F64) {
                return Err(JitFallback::UnsupportedMap {
                    map: mid,
                    access: MapAccess::EdgeFilter,
                });
            }
        }
        _ => {}
    }
    Ok(())
}

//! The plan interpreter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use dgp_am::machine::HandlerCtx;
use dgp_am::{AmCtx, MessageType, SpanKind};
use dgp_graph::{DistGraph, LockMap, VertexId};

use crate::engine::compiled::{self, Ctl, JitFallback, JitGen, JitProgram};
use crate::engine::maps::ErasedMap;
use crate::engine::value::{EnvArr, EnvView, Val, MAX_SLOTS};
use crate::engine::{EngineConfig, EngineStats, EngineStatsSnapshot, SyncMode};
use crate::ir::{ActionIr, GenItem, GeneratorIr, Place, ReadRef};
use crate::plan::{self, ExecStep};

/// Identifier of an action registered with a [`PatternEngine`].
pub type ActionId = u32;

const START_PC: u32 = u32::MAX;

/// The single message type the engine registers: one step of one action
/// instance, addressed to the locality it must run at.
#[derive(Debug, Clone, Copy)]
pub struct ActionMsg {
    pub(crate) action: ActionId,
    /// Program counter into the action's plan; `START_PC` = expand the
    /// generator at `v`.
    pub(crate) pc: u32,
    /// The action's input vertex.
    pub(crate) v: VertexId,
    /// The locality (vertex) this message is executing at.
    pub(crate) at: VertexId,
    pub(crate) gen: GenItem,
    pub(crate) env: EnvArr,
}

/// How a modification applies its computed value. The same distinction is
/// recorded statically in [`crate::ir::ModificationIr::kind`]; this alias
/// keeps the engine's historical name for it.
pub use crate::ir::ModKind as ModOp;

/// Computes a modification's new (or inserted) value from the payload and
/// the target's current value.
pub type ComputeFn = Arc<dyn Fn(&EnvView<'_>, Val) -> Val + Send + Sync>;

/// Executable form of one modification.
pub struct ModExec {
    /// How the computed value is applied.
    pub op: ModOp,
    /// Computes the new (or inserted) value from the payload and the
    /// target's current value.
    pub compute: ComputeFn,
}

/// Work hook: called at the owner of a dependent vertex (§III-C).
pub type WorkHook = Arc<dyn Fn(&AmCtx, VertexId) + Send + Sync>;

/// Resolves a [`Place`] to a concrete vertex at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Resolver {
    Input,
    GenVertex,
    GenSrc,
    GenTrg,
    /// The place is `p[x]`; its vertex value was gathered into this slot.
    FromSlot(usize),
}

pub(crate) enum SlotReader {
    Vertex { map: usize, resolver: Resolver },
    Edge { map: usize },
}

pub(crate) struct CompiledAction {
    pub ir: ActionIr,
    pub plan: plan::ExecPlan,
    /// `ActionMsg` sends attributed to this action on this rank (initial
    /// invocations plus remote `Goto` hops) — the per-action share of the
    /// machine's message counts.
    msgs_sent: AtomicU64,
    pub(crate) tests: Vec<crate::builder::TestFn>,
    pub(crate) mods: Vec<Vec<ModExec>>,
    pub(crate) dep: Vec<Vec<bool>>,
    /// Aligned with `plan.places`.
    pub(crate) resolvers: Vec<Resolver>,
    /// Aligned with `ir.slots`.
    pub(crate) readers: Vec<SlotReader>,
    /// Aligned with `plan.places` for modification targets: resolver of
    /// each condition/mod target place computed on demand via plan places.
    pub(crate) mod_target_resolvers: Vec<Vec<Resolver>>,
    /// Proof-carrying fast path (INTERNALS §13): the plan carries
    /// [`crate::plan::VerifiedFacts`] and the config accepts it, so slot
    /// reads and modification targets use `msg.at` directly instead of
    /// re-resolving their place and checking locality per message. Sound
    /// because the proof's `L001` facts pin every such site's Def. 1
    /// locality to the current step's place — the very place whose
    /// resolution produced `msg.at` at the last `Goto` — and no step
    /// between that `Goto` and the access can overwrite the resolution
    /// slot (its locality is structurally distinct from the `MapAt` place
    /// it resolves, so `L001` keeps re-gathers away from it).
    pub(crate) elide_guards: bool,
    /// The plan compiled to native closures (INTERNALS §14) — present
    /// only when the gate and the compiler both accepted it; the engine
    /// then never enters the interpreter for this action.
    jit: Option<JitProgram>,
    /// Why the action is interpreted instead; `None` iff `jit` is set.
    jit_fallback: Option<JitFallback>,
}

pub(crate) struct EngineInner {
    pub(crate) graph: DistGraph,
    pub(crate) rank: usize,
    pub(crate) cfg: EngineConfig,
    pub(crate) maps: RwLock<Vec<Arc<dyn ErasedMap>>>,
    pub(crate) actions: RwLock<Vec<Arc<CompiledAction>>>,
    pub(crate) hooks: RwLock<Vec<Option<WorkHook>>>,
    pub(crate) lock_map: LockMap,
    pub(crate) stats: EngineStats,
    /// Owner-only accesses observed away from their locality — only
    /// counted when [`EngineConfig::validate_locality`] is set (the
    /// dynamic cross-validator of the static verifier).
    locality_violations: AtomicU64,
    msg: OnceLock<MessageType<ActionMsg>>,
}

/// The per-rank pattern engine. Cloning shares the underlying state (use
/// clones inside work hooks and strategies).
#[derive(Clone)]
pub struct PatternEngine {
    inner: Arc<EngineInner>,
}

impl PatternEngine {
    /// Collectively construct the engine: registers its AM message type,
    /// so every rank must call this at the same registration point.
    pub fn new(ctx: &AmCtx, graph: DistGraph, cfg: EngineConfig) -> PatternEngine {
        let rank = ctx.rank();
        let locals = graph.shard(rank).num_local();
        let inner = Arc::new(EngineInner {
            graph,
            rank,
            cfg,
            maps: RwLock::new(Vec::new()),
            actions: RwLock::new(Vec::new()),
            hooks: RwLock::new(Vec::new()),
            lock_map: LockMap::new(locals, cfg.lock_granularity),
            stats: EngineStats::default(),
            locality_violations: AtomicU64::new(0),
            msg: OnceLock::new(),
        });
        let handler_inner = inner.clone();
        let mt = ctx.register_named(
            "pattern-engine",
            move |hctx: &HandlerCtx<'_, ActionMsg>, m: ActionMsg| {
                handler_inner.exec(hctx, m);
            },
        );
        inner
            .msg
            .set(mt)
            .unwrap_or_else(|_| unreachable!("engine registered once"));
        PatternEngine { inner }
    }

    /// The graph the engine runs over.
    pub fn graph(&self) -> &DistGraph {
        &self.inner.graph
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.cfg
    }

    /// Register a type-erased property map. Collective: same order on
    /// every rank. Returns the map id used in patterns.
    pub fn register_map(&self, map: Arc<dyn ErasedMap>) -> crate::ir::MapId {
        let mut maps = self.inner.maps.write();
        maps.push(map);
        (maps.len() - 1) as crate::ir::MapId
    }

    /// Register an atomic vertex property map (distances, labels, parents).
    pub fn register_vertex_map<T>(
        &self,
        map: &dgp_graph::properties::AtomicVertexMap<T>,
    ) -> crate::ir::MapId
    where
        T: crate::engine::maps::ValCodec + dgp_graph::properties::AtomicValue,
    {
        self.register_map(Arc::new(crate::engine::maps::AtomicMapHandle {
            map: map.clone(),
        }))
    }

    /// Register an edge property map (weights).
    pub fn register_edge_map<T>(&self, map: &dgp_graph::properties::EdgeMap<T>) -> crate::ir::MapId
    where
        T: crate::engine::maps::ValCodec + Clone + Send + Sync + 'static,
    {
        self.register_map(Arc::new(crate::engine::maps::EdgeMapHandle {
            map: map.clone(),
        }))
    }

    /// Register a set-valued vertex map (for `MapSet` generators and
    /// `insert` modifications).
    pub fn register_set_map(
        &self,
        map: &dgp_graph::properties::LockedVertexMap<Vec<VertexId>>,
    ) -> crate::ir::MapId {
        self.register_map(Arc::new(crate::engine::maps::SetMapHandle {
            map: map.clone(),
        }))
    }

    /// Register an action built with [`crate::builder::ActionBuilder`].
    /// Collective: same order on every rank.
    pub fn add_action(&self, built: crate::builder::BuiltAction) -> Result<ActionId, String> {
        let crate::builder::BuiltAction {
            ir, tests, mods, ..
        } = built;
        if ir.slots.len() > MAX_SLOTS {
            return Err(format!(
                "action {:?} declares {} reads; the engine supports at most {MAX_SLOTS}",
                ir.name,
                ir.slots.len()
            ));
        }
        let plan = plan::compile(&ir, self.inner.cfg.plan_mode)?;
        let resolvers = plan
            .places
            .iter()
            .map(|p| resolver_for(&ir, p))
            .collect::<Result<Vec<_>, _>>()?;
        let readers = ir
            .slots
            .iter()
            .map(|r| match r {
                ReadRef::VertexProp { map, at } => Ok(SlotReader::Vertex {
                    map: *map as usize,
                    resolver: resolver_for(&ir, at)?,
                }),
                ReadRef::EdgeProp { map } => Ok(SlotReader::Edge { map: *map as usize }),
            })
            .collect::<Result<Vec<_>, String>>()?;
        let mod_target_resolvers = ir
            .conditions
            .iter()
            .map(|c| {
                c.mods
                    .iter()
                    .map(|m| resolver_for(&ir, &m.at))
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        let dep = ir.dependency_matrix();
        // Guard elision requires the proof *and* an opted-in config; the
        // dynamic locality cross-validator needs the guards to run, so it
        // always forces the guarded path.
        let elide_guards = plan.facts.is_some()
            && self.inner.cfg.elide_verified_checks
            && !self.inner.cfg.validate_locality;
        let mut compiled = CompiledAction {
            ir,
            plan,
            msgs_sent: AtomicU64::new(0),
            tests,
            mods,
            dep,
            resolvers,
            readers,
            mod_target_resolvers,
            elide_guards,
            jit: None,
            jit_fallback: None,
        };
        // Attempt the plan→closure compiler (INTERNALS §14). Its gate
        // re-derives `elide_guards` plus the `compile_plans` knob, so a
        // compiled action is always also a guard-elided one; a fallback
        // is recorded, not an error — the interpreter remains the
        // semantics oracle.
        let maps = self.inner.maps.read().clone();
        match compiled::compile(&compiled, &maps, &self.inner.cfg) {
            Ok(prog) => compiled.jit = Some(prog),
            Err(fb) => compiled.jit_fallback = Some(fb),
        }
        let compiled = Arc::new(compiled);
        let mut actions = self.inner.actions.write();
        actions.push(compiled);
        self.inner.hooks.write().push(None);
        Ok((actions.len() - 1) as ActionId)
    }

    /// The compiled plan of an action (inspection/reporting).
    pub fn plan_of(&self, action: ActionId) -> plan::ExecPlan {
        self.inner.actions.read()[action as usize].plan.clone()
    }

    /// Whether the interpreter runs this action on the proof-carrying
    /// fast path — per-message locality/def-use guards elided because the
    /// plan carries [`crate::plan::VerifiedFacts`] and the config accepts
    /// it (INTERNALS §13).
    pub fn elides_guards(&self, action: ActionId) -> bool {
        self.inner.actions.read()[action as usize].elide_guards
    }

    /// Whether this action runs as compiled native closures instead of
    /// the step interpreter (INTERNALS §14).
    pub fn compiles(&self, action: ActionId) -> bool {
        self.inner.actions.read()[action as usize].jit.is_some()
    }

    /// Why this action is interpreted — `None` when it compiles
    /// ([`Self::compiles`]); otherwise the recorded [`JitFallback`].
    pub fn compile_fallback(&self, action: ActionId) -> Option<JitFallback> {
        self.inner.actions.read()[action as usize].jit_fallback
    }

    /// Install the action's work hook (the paper's `a.work(Vertex v) =
    /// {...}` customization point): called at the owner of each dependent
    /// vertex.
    pub fn set_work_hook(&self, action: ActionId, hook: WorkHook) {
        self.inner.hooks.write()[action as usize] = Some(hook);
    }

    /// Remove the action's work hook (dependencies are then "simply
    /// ignored", the default of §III-C).
    pub fn clear_work_hook(&self, action: ActionId) {
        self.inner.hooks.write()[action as usize] = None;
    }

    /// Start `action` at vertex `v` from anywhere: sends the start message
    /// to `v`'s owner (object-based addressing). Use inside an epoch.
    pub fn invoke(&self, ctx: &AmCtx, action: ActionId, v: VertexId) {
        let msg = ActionMsg {
            action,
            pc: START_PC,
            v,
            at: v,
            gen: GenItem::None,
            env: EnvArr::default(),
        };
        self.inner.actions.read()[action as usize]
            .msgs_sent
            .fetch_add(1, Ordering::Relaxed);
        let mt = *self.inner.msg.get().expect("engine constructed");
        mt.send(ctx, self.inner.graph.owner(v), msg);
    }

    /// Run `action` at owned vertex `v` inline (strategy main loops and
    /// work hooks: "the action a is immediately run on the vertex").
    pub fn run_at(&self, ctx: &AmCtx, action: ActionId, v: VertexId) {
        debug_assert_eq!(self.inner.graph.owner(v), ctx.rank());
        let msg = ActionMsg {
            action,
            pc: START_PC,
            v,
            at: v,
            gen: GenItem::None,
            env: EnvArr::default(),
        };
        self.inner.exec(ctx, msg);
    }

    /// This rank's engine counters.
    pub fn stats(&self) -> EngineStatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Owner-only accesses observed away from their locality on this rank.
    /// Always zero unless [`EngineConfig::validate_locality`] is set; with
    /// it set, a verifier-clean pattern must keep this at zero (the
    /// differential property the test suite checks).
    pub fn locality_violations(&self) -> u64 {
        self.inner.locality_violations.load(Ordering::SeqCst)
    }

    /// Per-action message counts on this rank: `(action name, ActionMsg
    /// sends)`, in registration order. Attributes the machine's message
    /// traffic to the actions that caused it (initial invocations plus
    /// remote `Goto` hops; inline same-rank hops send nothing and are
    /// not counted).
    pub fn action_message_counts(&self) -> Vec<(String, u64)> {
        self.inner
            .actions
            .read()
            .iter()
            .map(|a| (a.ir.name.clone(), a.msgs_sent.load(Ordering::Relaxed)))
            .collect()
    }
}

fn resolver_for(ir: &ActionIr, p: &Place) -> Result<Resolver, String> {
    Ok(match p {
        Place::Input => Resolver::Input,
        Place::GenVertex => Resolver::GenVertex,
        Place::GenSrc => Resolver::GenSrc,
        Place::GenTrg => Resolver::GenTrg,
        Place::MapAt(m, inner) => {
            let slot = ir
                .slots
                .iter()
                .position(
                    |r| matches!(r, ReadRef::VertexProp { map, at } if map == m && at == &**inner),
                )
                .ok_or_else(|| {
                    format!("place {m}[{inner:?}] needs its resolving read declared as a slot")
                })?;
            Resolver::FromSlot(slot)
        }
    })
}

impl EngineInner {
    /// Dynamic owner-only check (Def. 1): `actual` must be the vertex the
    /// message is executing at. With `validate_locality` the violation is
    /// counted (for the differential test against the static verifier);
    /// without it, debug builds keep the historical hard assert.
    fn check_locality(&self, actual: VertexId, expected: VertexId, what: &str, name: &str) {
        if actual == expected {
            return;
        }
        if self.cfg.validate_locality {
            self.locality_violations.fetch_add(1, Ordering::Relaxed);
        } else {
            debug_assert_eq!(
                actual, expected,
                "{what} of {name:?} away from its locality"
            );
        }
    }

    fn resolve(&self, r: Resolver, msg: &ActionMsg) -> VertexId {
        match r {
            Resolver::Input => msg.v,
            Resolver::GenVertex => match msg.gen {
                GenItem::Vertex(u) => u,
                other => panic!("generated vertex expected, found {other:?}"),
            },
            Resolver::GenSrc => match msg.gen {
                GenItem::Edge { src, .. } => src,
                other => panic!("generated edge expected, found {other:?}"),
            },
            Resolver::GenTrg => match msg.gen {
                GenItem::Edge { trg, .. } => trg,
                other => panic!("generated edge expected, found {other:?}"),
            },
            Resolver::FromSlot(s) => msg.env.get(s).as_vertex(),
        }
    }

    fn read_slot(&self, action: &CompiledAction, msg: &ActionMsg, slot: usize) -> Val {
        match &action.readers[slot] {
            SlotReader::Vertex { map, resolver } => {
                // Proof-carrying plans skip the per-message resolve +
                // locality guard: the soundness pass proved this site
                // reads at the current step's place, which is `msg.at`.
                let y = if action.elide_guards {
                    msg.at
                } else {
                    let y = self.resolve(*resolver, msg);
                    self.check_locality(y, msg.at, "slot read", &action.ir.name);
                    y
                };
                self.maps.read()[*map].read_vertex(self.rank, y)
            }
            SlotReader::Edge { map } => match msg.gen {
                GenItem::Edge { eidx, incoming, .. } => {
                    self.maps.read()[*map].read_edge(self.rank, eidx as usize, incoming)
                }
                other => panic!("edge property read without a generated edge ({other:?})"),
            },
        }
    }

    fn exec(&self, ctx: &AmCtx, msg: ActionMsg) {
        if msg.pc == START_PC {
            self.exec_start(ctx, msg);
        } else {
            let action = self.actions.read()[msg.action as usize].clone();
            self.run(ctx, &action, msg);
        }
    }

    /// Run one instance from `msg.pc`: compiled closures when the action
    /// has them, the interpreter otherwise.
    fn run(&self, ctx: &AmCtx, action: &CompiledAction, msg: ActionMsg) {
        if let Some(jit) = &action.jit {
            self.run_jit(ctx, action, jit, msg);
        } else {
            self.run_steps(ctx, action, msg);
        }
    }

    /// Drive a compiled action: each step closure returns what to do
    /// next; hops reuse the interpreter's send-or-inline rule (and its
    /// coalescing buffers — the same single message type).
    fn run_jit(&self, ctx: &AmCtx, action: &CompiledAction, jit: &JitProgram, mut msg: ActionMsg) {
        loop {
            match (jit.steps[msg.pc as usize])(self, ctx, &mut msg) {
                Ctl::Next(pc) => msg.pc = pc,
                Ctl::Hop { target, pc } => {
                    msg.pc = pc;
                    if target != msg.at {
                        msg.at = target;
                        let dest = self.graph.owner(target);
                        if dest != self.rank || self.cfg.self_send {
                            action.msgs_sent.fetch_add(1, Ordering::Relaxed);
                            let mt = *self.msg.get().expect("engine constructed");
                            mt.send(ctx, dest, msg);
                            return;
                        }
                        // Shared-memory shortcut: same rank, run inline.
                    }
                }
                Ctl::Done => return,
            }
        }
    }

    /// Expand the generator at the input vertex and run each instance.
    fn exec_start(&self, ctx: &AmCtx, msg: ActionMsg) {
        debug_assert_eq!(self.graph.owner(msg.v), self.rank);
        EngineStats::bump(&self.stats.actions_started);
        let action = self.actions.read()[msg.action as usize].clone();
        let mut expand_span = ctx
            .span(SpanKind::Expand, "engine.expand")
            .map(|s| s.args(msg.action as u64, 0));
        let expanded = std::cell::Cell::new(0u64);
        let shard = self.graph.shard(self.rank);
        let li = shard.local_of(msg.v);
        let launch = |gen: GenItem| {
            EngineStats::bump(&self.stats.items_generated);
            expanded.set(expanded.get() + 1);
            let m = ActionMsg {
                pc: 0,
                at: msg.v,
                gen,
                env: EnvArr::default(),
                ..msg
            };
            self.run(ctx, &action, m);
        };
        let jit_gen = action.jit.as_ref().map(|j| &j.gen);
        match action.ir.generator {
            GeneratorIr::None => launch(GenItem::None),
            GeneratorIr::OutEdges => {
                for (eidx, trg) in shard.out_edges(li) {
                    launch(GenItem::Edge {
                        src: msg.v,
                        trg,
                        eidx: eidx as u32,
                        incoming: false,
                    });
                }
            }
            GeneratorIr::OutEdgesFiltered {
                weight,
                threshold_bits,
                keep_light,
            } => {
                // The storage-split optimization of §II-A: the filter runs
                // where the edges (and their weights) live, before any
                // message is created. The compiled generator reads the
                // weights through the typed map with its threshold
                // pre-decoded; semantics are identical.
                if let Some(JitGen::OutEdgesFiltered {
                    weights,
                    threshold,
                    keep_light,
                }) = jit_gen
                {
                    for (eidx, trg) in shard.out_edges(li) {
                        let w = weights.get_out(self.rank, eidx);
                        let keep = if *keep_light {
                            w <= *threshold
                        } else {
                            w > *threshold
                        };
                        if keep {
                            launch(GenItem::Edge {
                                src: msg.v,
                                trg,
                                eidx: eidx as u32,
                                incoming: false,
                            });
                        }
                    }
                } else {
                    let threshold = f64::from_bits(threshold_bits);
                    let maps = self.maps.read();
                    for (eidx, trg) in shard.out_edges(li) {
                        let w = maps[weight as usize]
                            .read_edge(self.rank, eidx, false)
                            .as_f64();
                        let keep = if keep_light {
                            w <= threshold
                        } else {
                            w > threshold
                        };
                        if keep {
                            launch(GenItem::Edge {
                                src: msg.v,
                                trg,
                                eidx: eidx as u32,
                                incoming: false,
                            });
                        }
                    }
                }
            }
            GeneratorIr::InEdges => {
                for (eidx, src) in shard.in_edges(li) {
                    launch(GenItem::Edge {
                        src,
                        trg: msg.v,
                        eidx: eidx as u32,
                        incoming: true,
                    });
                }
            }
            GeneratorIr::Adj => {
                for u in shard.adj(li) {
                    launch(GenItem::Vertex(u));
                }
            }
            GeneratorIr::MapSet(m) => {
                let set = if let Some(JitGen::MapSet(tm)) = jit_gen {
                    tm.get(self.rank, msg.v)
                } else {
                    self.maps.read()[m as usize].read_vertex_set(self.rank, msg.v)
                };
                for u in set {
                    launch(GenItem::Vertex(u));
                }
            }
        }
        if let Some(s) = expand_span.as_mut() {
            s.set_arg1(expanded.get());
        }
    }

    /// Interpret steps until the instance ends or moves to another vertex.
    fn run_steps(&self, ctx: &AmCtx, action: &CompiledAction, mut msg: ActionMsg) {
        loop {
            match &action.plan.steps[msg.pc as usize] {
                ExecStep::Goto { to, next } => {
                    let target = self.resolve(action.resolvers[*to], &msg);
                    msg.pc = *next as u32;
                    if target != msg.at {
                        msg.at = target;
                        let dest = self.graph.owner(target);
                        if dest != self.rank || self.cfg.self_send {
                            action.msgs_sent.fetch_add(1, Ordering::Relaxed);
                            let mt = *self.msg.get().expect("engine constructed");
                            mt.send(ctx, dest, msg);
                            return;
                        }
                        // Shared-memory shortcut: same rank, run inline.
                    }
                }
                ExecStep::Gather { slots, next } => {
                    let _s = ctx
                        .span(SpanKind::Gather, "engine.gather")
                        .map(|s| s.args(msg.action as u64, slots.len() as u64));
                    for &s in slots {
                        let val = self.read_slot(action, &msg, s);
                        msg.env.set(s, val);
                    }
                    msg.pc = *next as u32;
                }
                ExecStep::Eval {
                    cond,
                    local_slots,
                    on_true,
                    on_false,
                } => {
                    let _s = ctx
                        .span(SpanKind::Eval, "engine.eval")
                        .map(|s| s.args(msg.action as u64, *cond as u64));
                    for &s in local_slots {
                        let val = self.read_slot(action, &msg, s);
                        msg.env.set(s, val);
                    }
                    let t = {
                        let view = EnvView {
                            env: &msg.env,
                            v: msg.v,
                            gen: msg.gen,
                        };
                        (action.tests[*cond])(&view)
                    };
                    EngineStats::bump(if t {
                        &self.stats.conditions_true
                    } else {
                        &self.stats.conditions_false
                    });
                    msg.pc = (if t { *on_true } else { *on_false }) as u32;
                }
                ExecStep::EvalModify {
                    cond,
                    local_slots,
                    mods,
                    on_true,
                    on_false,
                } => {
                    let _s = ctx
                        .span(SpanKind::Eval, "engine.eval_modify")
                        .map(|s| s.args(msg.action as u64, *cond as u64));
                    let fired = self.eval_modify(ctx, action, &mut msg, *cond, local_slots, mods);
                    msg.pc = (if fired { *on_true } else { *on_false }) as u32;
                }
                ExecStep::ModifyGroup {
                    cond,
                    local_slots,
                    mods,
                    next,
                } => {
                    let _s = ctx
                        .span(SpanKind::Eval, "engine.modify")
                        .map(|s| s.args(msg.action as u64, *cond as u64));
                    self.apply_group(ctx, action, &mut msg, *cond, local_slots, mods, None);
                    msg.pc = *next as u32;
                }
                ExecStep::End => return,
            }
        }
    }

    /// The merged evaluate-and-modify step (§IV-A): "together with
    /// synchronization, this merging allows to ensure consistency of reads
    /// and writes of the modified value".
    fn eval_modify(
        &self,
        ctx: &AmCtx,
        action: &CompiledAction,
        msg: &mut ActionMsg,
        cond: usize,
        local_slots: &[usize],
        mods: &[usize],
    ) -> bool {
        // Atomic fast path: a single assignment whose target is the only
        // value read fresh here — the condition+modification collapses into
        // one atomic read-modify-write (SSSP relax).
        if self.cfg.sync == SyncMode::Atomic && mods.len() == 1 && local_slots.len() == 1 {
            let mi = mods[0];
            let m = &action.ir.conditions[cond].mods[mi];
            let slot = local_slots[0];
            let slot_matches = matches!(
                &action.readers[slot],
                SlotReader::Vertex { map, resolver }
                    if *map == m.map as usize
                        && *resolver == action.mod_target_resolvers[cond][mi]
            );
            let op = action.mods[cond][mi].op;
            if slot_matches && op == ModOp::Assign {
                let target = if action.elide_guards {
                    msg.at
                } else {
                    let t = self.resolve(action.mod_target_resolvers[cond][mi], msg);
                    self.check_locality(t, msg.at, "atomic modification", &action.ir.name);
                    t
                };
                let test = &action.tests[cond];
                let compute = &action.mods[cond][mi].compute;
                let (v_in, gen) = (msg.v, msg.gen);
                let env_base = msg.env;
                let (_, new, changed) =
                    self.maps.read()[m.map as usize].update_vertex(self.rank, target, &|old| {
                        let mut env = env_base;
                        env.set(slot, old);
                        let view = EnvView {
                            env: &env,
                            v: v_in,
                            gen,
                        };
                        if test(&view) {
                            compute(&view, old)
                        } else {
                            old
                        }
                    });
                msg.env.set(slot, new);
                EngineStats::bump(if changed {
                    &self.stats.conditions_true
                } else {
                    &self.stats.conditions_false
                });
                EngineStats::bump(if changed {
                    &self.stats.modifications_changed
                } else {
                    &self.stats.modifications_unchanged
                });
                if changed && action.dep[cond][mi] {
                    self.fire_hook(ctx, msg.action, msg.at);
                }
                return changed;
            }
        }

        // General path: the lock covering the modified vertex synchronizes
        // the fresh reads, the test, and the first modification group.
        let li = self.graph.shard(self.rank).local_of(msg.at);
        let guard = self.lock_map.guard(li);
        for &s in local_slots {
            let val = self.read_slot(action, msg, s);
            msg.env.set(s, val);
        }
        let fired = {
            let view = EnvView {
                env: &msg.env,
                v: msg.v,
                gen: msg.gen,
            };
            (action.tests[cond])(&view)
        };
        EngineStats::bump(if fired {
            &self.stats.conditions_true
        } else {
            &self.stats.conditions_false
        });
        if fired {
            self.apply_group(ctx, action, msg, cond, &[], mods, Some(guard));
        }
        fired
    }

    /// Apply one modification group at the current vertex. `guard` is the
    /// already-held lock for a merged group; unmerged groups take their
    /// own lock ("every modification... is guaranteed to be atomic").
    #[allow(clippy::too_many_arguments)]
    fn apply_group(
        &self,
        ctx: &AmCtx,
        action: &CompiledAction,
        msg: &mut ActionMsg,
        cond: usize,
        local_slots: &[usize],
        mods: &[usize],
        guard: Option<parking_lot::MutexGuard<'_, ()>>,
    ) {
        let li = self.graph.shard(self.rank).local_of(msg.at);
        let _guard = match guard {
            Some(g) => g,
            None => self.lock_map.guard(li),
        };
        // Reads co-located with the modified values are taken fresh under
        // the group's lock (the merged-step consistency rule, §IV-A).
        for &s in local_slots {
            let val = self.read_slot(action, msg, s);
            msg.env.set(s, val);
        }
        let mut dep_changed = false;
        for &mi in mods {
            let m = &action.ir.conditions[cond].mods[mi];
            let target = if action.elide_guards {
                msg.at
            } else {
                let t = self.resolve(action.mod_target_resolvers[cond][mi], msg);
                self.check_locality(t, msg.at, "modification", &action.ir.name);
                t
            };
            let exec = &action.mods[cond][mi];
            let maps = self.maps.read();
            let changed = match exec.op {
                ModOp::Assign => {
                    let old = maps[m.map as usize].read_vertex(self.rank, target);
                    let new = {
                        let view = EnvView {
                            env: &msg.env,
                            v: msg.v,
                            gen: msg.gen,
                        };
                        (exec.compute)(&view, old)
                    };
                    if new != old {
                        maps[m.map as usize].write_vertex(self.rank, target, new);
                        true
                    } else {
                        false
                    }
                }
                ModOp::Insert => {
                    let u = {
                        let view = EnvView {
                            env: &msg.env,
                            v: msg.v,
                            gen: msg.gen,
                        };
                        (exec.compute)(&view, Val::Unset).as_vertex()
                    };
                    maps[m.map as usize].insert_vertex(self.rank, target, u)
                }
            };
            EngineStats::bump(if changed {
                &self.stats.modifications_changed
            } else {
                &self.stats.modifications_unchanged
            });
            if changed && action.dep[cond][mi] {
                dep_changed = true;
            }
        }
        drop(_guard);
        if dep_changed {
            self.fire_hook(ctx, msg.action, msg.at);
        }
    }

    pub(crate) fn fire_hook(&self, ctx: &AmCtx, action: ActionId, v: VertexId) {
        EngineStats::bump(&self.stats.dependencies_fired);
        let hook = self.hooks.read()[action as usize].clone();
        if let Some(h) = hook {
            h(ctx, v);
        }
    }
}

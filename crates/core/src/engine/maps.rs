//! Type-erased access to property maps, so one engine executes patterns
//! over maps of any value type.

use dgp_graph::properties::{AtomicValue, AtomicVertexMap, EdgeMap, LockedVertexMap};
use dgp_graph::VertexId;

use crate::engine::value::Val;
use crate::ir::PropertyKind;

/// Conversion between a concrete property value type and the engine's
/// [`Val`] union.
pub trait ValCodec: Copy + Send + Sync + 'static {
    /// Encode into the engine's value union.
    fn to_val(self) -> Val;
    /// Decode from the engine's value union; panics on a mismatched
    /// variant (a pattern type error).
    fn from_val(v: Val) -> Self;
}

macro_rules! codec {
    ($t:ty, $variant:ident, $into:expr, $outof:expr) => {
        impl ValCodec for $t {
            #[inline]
            fn to_val(self) -> Val {
                Val::$variant($into(self))
            }
            #[inline]
            #[track_caller]
            fn from_val(v: Val) -> Self {
                match v {
                    Val::$variant(x) => $outof(x),
                    other => panic!(
                        concat!("expected ", stringify!($variant), " value, got {:?}"),
                        other
                    ),
                }
            }
        }
    };
}

codec!(u64, U, |x| x, |x| x);
codec!(u32, U, |x: u32| x as u64, |x: u64| x as u32);
codec!(usize, U, |x: usize| x as u64, |x: u64| x as usize);
codec!(i64, I, |x| x, |x| x);
codec!(f64, F, |x| x, |x| x);
codec!(bool, B, |x| x, |x| x);
codec!(Option<VertexId>, OptV, |x| x, |x| x);

/// What the execution engine needs from any registered property map.
pub trait ErasedMap: Send + Sync {
    /// Whether this map stores vertex or edge values.
    fn kind(&self) -> PropertyKind;

    /// Downcasting hook for the plan compiler
    /// ([`crate::engine::static_compilability`] and INTERNALS §14): the
    /// JIT recovers the concrete typed handle behind the erasure so
    /// compiled closures read and write through monomorphized map code.
    /// Return `self`; a handle type the compiler does not recognize
    /// simply keeps the action on the interpreter.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Read the vertex property at owned vertex `v`.
    fn read_vertex(&self, rank: usize, v: VertexId) -> Val {
        let _ = (rank, v);
        panic!("not a vertex property map");
    }

    /// Write the vertex property at owned vertex `v`. Returns the previous
    /// value (for change detection).
    fn write_vertex(&self, rank: usize, v: VertexId, val: Val) -> Val {
        let _ = (rank, v, val);
        panic!("not a writable vertex property map");
    }

    /// Atomic read-modify-write at owned vertex `v` (the §IV-B "atomic
    /// instructions where supported" path). Returns (old, new, changed).
    fn update_vertex(&self, rank: usize, v: VertexId, f: &dyn Fn(Val) -> Val) -> (Val, Val, bool) {
        let _ = (rank, v, f);
        panic!("not an atomically-updatable vertex property map");
    }

    /// Insert a vertex into a set-valued property (the paper's
    /// `preds[v].insert(u)` modification-through-interface). Returns
    /// whether the set changed.
    fn insert_vertex(&self, rank: usize, v: VertexId, u: VertexId) -> bool {
        let _ = (rank, v, u);
        panic!("not a set-valued vertex property map");
    }

    /// Enumerate a set-valued property (the paper's property-map
    /// generators).
    fn read_vertex_set(&self, rank: usize, v: VertexId) -> Vec<VertexId> {
        let _ = (rank, v);
        panic!("not a set-valued vertex property map");
    }

    /// Read the edge property of the rank's stored edge `eidx`
    /// (out-aligned, or in-aligned when `incoming`).
    fn read_edge(&self, rank: usize, eidx: usize, incoming: bool) -> Val {
        let _ = (rank, eidx, incoming);
        panic!("not an edge property map");
    }
}

/// Erased view over an [`AtomicVertexMap`].
pub struct AtomicMapHandle<T: ValCodec + AtomicValue> {
    /// The wrapped typed map.
    pub map: AtomicVertexMap<T>,
}

impl<T: ValCodec + AtomicValue> ErasedMap for AtomicMapHandle<T> {
    fn kind(&self) -> PropertyKind {
        PropertyKind::Vertex
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn read_vertex(&self, rank: usize, v: VertexId) -> Val {
        self.map.get(rank, v).to_val()
    }

    fn write_vertex(&self, rank: usize, v: VertexId, val: Val) -> Val {
        let old = self.map.get(rank, v);
        self.map.set(rank, v, T::from_val(val));
        old.to_val()
    }

    fn update_vertex(&self, rank: usize, v: VertexId, f: &dyn Fn(Val) -> Val) -> (Val, Val, bool) {
        let out = self.map.update(rank, v, |old| T::from_val(f(old.to_val())));
        (out.old.to_val(), out.new.to_val(), out.changed)
    }
}

/// Erased view over an [`EdgeMap`].
pub struct EdgeMapHandle<T: ValCodec + Clone> {
    /// The wrapped typed map.
    pub map: EdgeMap<T>,
}

impl<T: ValCodec + Clone + Send + Sync + 'static> ErasedMap for EdgeMapHandle<T> {
    fn kind(&self) -> PropertyKind {
        PropertyKind::Edge
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn read_edge(&self, rank: usize, eidx: usize, incoming: bool) -> Val {
        if incoming {
            self.map.get_in(rank, eidx).to_val()
        } else {
            self.map.get_out(rank, eidx).to_val()
        }
    }
}

/// Erased view over a set-valued vertex map (for `MapSet` generators and
/// `insert` modifications).
pub struct SetMapHandle {
    /// The wrapped set-valued map.
    pub map: LockedVertexMap<Vec<VertexId>>,
}

impl ErasedMap for SetMapHandle {
    fn kind(&self) -> PropertyKind {
        PropertyKind::Vertex
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn insert_vertex(&self, rank: usize, v: VertexId, u: VertexId) -> bool {
        self.map.with_mut(rank, v, |s| {
            if s.contains(&u) {
                false
            } else {
                s.push(u);
                true
            }
        })
    }

    fn read_vertex_set(&self, rank: usize, v: VertexId) -> Vec<VertexId> {
        self.map.get(rank, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgp_graph::Distribution;

    #[test]
    fn codec_roundtrips() {
        assert_eq!(u64::from_val(5u64.to_val()), 5);
        assert_eq!(f64::from_val(2.5f64.to_val()), 2.5);
        assert_eq!(i64::from_val((-3i64).to_val()), -3);
        assert!(bool::from_val(true.to_val()));
        assert_eq!(u32::from_val(7u32.to_val()), 7);
        assert_eq!(Option::<VertexId>::from_val(Some(4).to_val()), Some(4));
        assert_eq!(Option::<VertexId>::from_val(None.to_val()), None);
    }

    #[test]
    #[should_panic(expected = "expected F value")]
    fn codec_type_mismatch_panics() {
        f64::from_val(Val::U(1));
    }

    #[test]
    fn atomic_handle_reads_writes_updates() {
        let d = Distribution::block(4, 1);
        let h = AtomicMapHandle {
            map: AtomicVertexMap::new(d, 10.0f64),
        };
        assert_eq!(h.read_vertex(0, 2), Val::F(10.0));
        let old = h.write_vertex(0, 2, Val::F(3.0));
        assert_eq!(old, Val::F(10.0));
        let (o, n, c) = h.update_vertex(0, 2, &|v| Val::F(v.as_f64().min(1.0)));
        assert_eq!((o, n, c), (Val::F(3.0), Val::F(1.0), true));
        let (_, _, c) = h.update_vertex(0, 2, &|v| v);
        assert!(!c);
    }

    #[test]
    fn set_handle_inserts_once() {
        let d = Distribution::block(2, 1);
        let h = SetMapHandle {
            map: LockedVertexMap::new(d, Vec::new()),
        };
        assert!(h.insert_vertex(0, 0, 5));
        assert!(!h.insert_vertex(0, 0, 5));
        assert_eq!(h.read_vertex_set(0, 0), vec![5]);
    }

    #[test]
    #[should_panic(expected = "not an edge property map")]
    fn wrong_access_panics() {
        let d = Distribution::block(2, 1);
        let h = AtomicMapHandle {
            map: AtomicVertexMap::new(d, 0u64),
        };
        h.read_edge(0, 0, false);
    }
}

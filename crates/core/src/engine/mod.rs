//! The pattern execution engine: interprets compiled plans
//! ([`crate::plan::ExecPlan`]) as active messages over the `dgp-am`
//! runtime.
//!
//! Each rank constructs one [`PatternEngine`] (collectively — it registers
//! one AM message type). Property maps and actions are then registered in
//! the same order on every rank; strategies drive actions with
//! [`PatternEngine::invoke`] / [`PatternEngine::run_at`] inside epochs and
//! customize dependency handling through **work hooks**
//! ([`PatternEngine::set_work_hook`], the paper's `a.work(Vertex v) = ...`).

mod compiled;
mod exec;
mod maps;
mod value;

pub use compiled::{static_compilability, CodecKind, JitFallback, MapAccess, MapHint};
pub use exec::{ActionId, ActionMsg, ModExec, ModOp, PatternEngine, WorkHook};
pub use maps::{AtomicMapHandle, EdgeMapHandle, ErasedMap, SetMapHandle, ValCodec};
pub use value::{EnvArr, EnvView, Val, MAX_SLOTS};

use std::sync::atomic::{AtomicU64, Ordering};

use dgp_graph::LockGranularity;

use crate::plan::PlanMode;

/// How a merged condition+modification is synchronized at the modified
/// vertex (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Always acquire the vertex's lock from the rank's lock map.
    LockMap,
    /// Use an atomic read-modify-write when the step's shape allows it
    /// (single modification whose target is the only fresh-read value —
    /// the SSSP relax shape); fall back to the lock map otherwise. This is
    /// the paper's "atomic instructions where supported... we revert to
    /// locking when they are not".
    Atomic,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Gather-traversal flavor used when compiling actions.
    pub plan_mode: PlanMode,
    /// Synchronization at modified vertices.
    pub sync: SyncMode,
    /// Locking scheme of the per-rank lock map.
    pub lock_granularity: LockGranularity,
    /// Whether a hop to a different vertex on the *same* rank still goes
    /// through the message layer (faithful to the pure message-passing
    /// model) or executes inline (a shared-memory shortcut).
    pub self_send: bool,
    /// Dynamic cross-validator for the static verifier
    /// ([`crate::verify`]): count owner-only accesses executed away from
    /// their locality in [`PatternEngine::locality_violations`] instead of
    /// debug-asserting on them. Off by default (debug builds then keep the
    /// hard assert). Setting this forces the guarded interpreter path even
    /// for proof-carrying plans (the validator needs the checks to run).
    pub validate_locality: bool,
    /// Accept the proof a plan carries ([`crate::plan::ExecPlan::facts`])
    /// as licence to skip the per-message locality/def-use guards the
    /// interpreter otherwise performs on every slot read and modification
    /// (INTERNALS §13). On by default; turn off to benchmark the guarded
    /// path, or to belt-and-braces a deployment. Ignored (guards stay)
    /// when `validate_locality` is set or the plan carries no proof.
    pub elide_verified_checks: bool,
    /// Compile proof-carrying plans to monomorphized native handlers
    /// (INTERNALS §14): each [`crate::plan::ExecPlan`] whose
    /// [`crate::plan::ExecPlan::facts`] proof is present and accepted is
    /// lowered once, at [`PatternEngine::add_action`] time, into a chain
    /// of typed Rust closures — slot offsets resolved to direct frame
    /// indices, property-map accessors devirtualized through their
    /// [`ValCodec`] types, generator constants pre-evaluated. Plans
    /// without a proof, and step/map combinations the compiler does not
    /// support, fall back transparently to the interpreter (the semantics
    /// oracle). On by default; `validate_locality` forces it off (the
    /// validator needs the guarded interpreter), as does turning off
    /// `elide_verified_checks` (compiled code has no guards to keep).
    pub compile_plans: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            plan_mode: PlanMode::Optimized,
            sync: SyncMode::Atomic,
            lock_granularity: LockGranularity::PerVertex,
            self_send: true,
            validate_locality: false,
            elide_verified_checks: true,
            compile_plans: true,
        }
    }
}

/// Per-rank engine counters (summed across ranks by the harness).
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Action instances begun (initial invocations plus work-hook reruns).
    pub actions_started: AtomicU64,
    /// Generator items expanded (edges/vertices examined).
    pub items_generated: AtomicU64,
    /// Condition evaluations that fired.
    pub conditions_true: AtomicU64,
    /// Condition evaluations that did not fire.
    pub conditions_false: AtomicU64,
    /// Modifications that changed their target value.
    pub modifications_changed: AtomicU64,
    /// Modifications that left their target unchanged.
    pub modifications_unchanged: AtomicU64,
    /// Work items created by the §III-C dependency rule.
    pub dependencies_fired: AtomicU64,
}

/// A point-in-time copy of [`EngineStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStatsSnapshot {
    /// Action instances begun.
    pub actions_started: u64,
    /// Generator items expanded.
    pub items_generated: u64,
    /// Conditions that fired.
    pub conditions_true: u64,
    /// Conditions that did not fire.
    pub conditions_false: u64,
    /// Modifications that changed their target.
    pub modifications_changed: u64,
    /// Modifications that left their target unchanged.
    pub modifications_unchanged: u64,
    /// Dependency work items created.
    pub dependencies_fired: u64,
}

impl EngineStats {
    pub(crate) fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy (exact when quiescent).
    pub fn snapshot(&self) -> EngineStatsSnapshot {
        EngineStatsSnapshot {
            actions_started: self.actions_started.load(Ordering::SeqCst),
            items_generated: self.items_generated.load(Ordering::SeqCst),
            conditions_true: self.conditions_true.load(Ordering::SeqCst),
            conditions_false: self.conditions_false.load(Ordering::SeqCst),
            modifications_changed: self.modifications_changed.load(Ordering::SeqCst),
            modifications_unchanged: self.modifications_unchanged.load(Ordering::SeqCst),
            dependencies_fired: self.dependencies_fired.load(Ordering::SeqCst),
        }
    }
}

impl EngineStatsSnapshot {
    /// Counter-wise difference for measuring one phase.
    pub fn since(&self, earlier: &EngineStatsSnapshot) -> EngineStatsSnapshot {
        EngineStatsSnapshot {
            actions_started: self.actions_started - earlier.actions_started,
            items_generated: self.items_generated - earlier.items_generated,
            conditions_true: self.conditions_true - earlier.conditions_true,
            conditions_false: self.conditions_false - earlier.conditions_false,
            modifications_changed: self.modifications_changed - earlier.modifications_changed,
            modifications_unchanged: self.modifications_unchanged - earlier.modifications_unchanged,
            dependencies_fired: self.dependencies_fired - earlier.dependencies_fired,
        }
    }
}

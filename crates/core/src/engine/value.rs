//! Runtime values carried in pattern-message payloads.

use dgp_graph::VertexId;

use crate::ir::{GenItem, Slot};

/// Maximum declared reads per action (payload slots are a fixed-size
/// array so messages stay `Copy` and coalesce cheaply).
pub const MAX_SLOTS: usize = 8;

/// A property value in flight. The engine is monomorphic over this small
/// union — the paper's expressions are arbitrary C++; ours are arbitrary
/// Rust closures over these values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    /// Slot not gathered yet.
    Unset,
    /// Unsigned integer (also vertex ids).
    U(u64),
    /// Signed integer.
    I(i64),
    /// Floating point.
    F(f64),
    /// Boolean.
    B(bool),
    /// Optional vertex (the paper's `NULL`-able parent/component values).
    OptV(Option<VertexId>),
}

impl Val {
    /// Interpret as a vertex id; panics (with context) on `Unset`, `NULL`,
    /// or non-vertex values — these indicate pattern bugs, mirroring the
    /// paper's restriction that vertices only arise from generators and
    /// property maps.
    #[track_caller]
    pub fn as_vertex(self) -> VertexId {
        match self {
            Val::U(v) => v,
            Val::OptV(Some(v)) => v,
            Val::OptV(None) => panic!("NULL vertex value used as a locality"),
            other => panic!("value {other:?} used as a vertex"),
        }
    }

    /// Interpret as `f64`; panics with context on a type mismatch.
    #[track_caller]
    pub fn as_f64(self) -> f64 {
        match self {
            Val::F(x) => x,
            other => panic!("value {other:?} read as f64"),
        }
    }

    /// Interpret as `u64`; panics with context on a type mismatch.
    #[track_caller]
    pub fn as_u64(self) -> u64 {
        match self {
            Val::U(x) => x,
            other => panic!("value {other:?} read as u64"),
        }
    }

    /// Interpret as `i64`; panics with context on a type mismatch.
    #[track_caller]
    pub fn as_i64(self) -> i64 {
        match self {
            Val::I(x) => x,
            other => panic!("value {other:?} read as i64"),
        }
    }

    /// Interpret as `bool`; panics with context on a type mismatch.
    #[track_caller]
    pub fn as_bool(self) -> bool {
        match self {
            Val::B(x) => x,
            other => panic!("value {other:?} read as bool"),
        }
    }

    /// Interpret as optional vertex; panics with context on a type mismatch.
    #[track_caller]
    pub fn as_opt_vertex(self) -> Option<VertexId> {
        match self {
            Val::OptV(x) => x,
            other => panic!("value {other:?} read as optional vertex"),
        }
    }
}

/// The fixed-size payload environment of an action instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvArr {
    vals: [Val; MAX_SLOTS],
}

impl Default for EnvArr {
    fn default() -> Self {
        EnvArr {
            vals: [Val::Unset; MAX_SLOTS],
        }
    }
}

impl EnvArr {
    /// Read a payload slot.
    #[inline]
    pub fn get(&self, slot: usize) -> Val {
        self.vals[slot]
    }

    /// Fill a payload slot.
    #[inline]
    pub fn set(&mut self, slot: usize, v: Val) {
        self.vals[slot] = v;
    }
}

/// The view condition tests and modification right-hand sides see: the
/// gathered payload plus the action instance's input vertex and generated
/// item. Aliases from the paper's pattern language are plain `let`
/// bindings over these accessors.
#[derive(Clone, Copy)]
pub struct EnvView<'a> {
    pub(crate) env: &'a EnvArr,
    pub(crate) v: VertexId,
    pub(crate) gen: GenItem,
}

impl<'a> EnvView<'a> {
    /// Raw slot value.
    pub fn val(&self, s: Slot) -> Val {
        self.env.get(s.0)
    }

    /// The slot as `f64`.
    pub fn f64(&self, s: Slot) -> f64 {
        self.val(s).as_f64()
    }

    /// The slot as `u64`.
    pub fn u64(&self, s: Slot) -> u64 {
        self.val(s).as_u64()
    }

    /// The slot as `i64`.
    pub fn i64(&self, s: Slot) -> i64 {
        self.val(s).as_i64()
    }

    /// The slot as `bool`.
    pub fn bool(&self, s: Slot) -> bool {
        self.val(s).as_bool()
    }

    /// The slot as a vertex id.
    pub fn vertex(&self, s: Slot) -> VertexId {
        self.val(s).as_vertex()
    }

    /// The slot as an optional (`NULL`-able) vertex.
    pub fn opt_vertex(&self, s: Slot) -> Option<VertexId> {
        self.val(s).as_opt_vertex()
    }

    /// The action's input vertex `v`.
    pub fn input(&self) -> VertexId {
        self.v
    }

    /// The generated vertex `u`.
    #[track_caller]
    pub fn gen_vertex(&self) -> VertexId {
        match self.gen {
            GenItem::Vertex(u) => u,
            other => panic!("no generated vertex in {other:?}"),
        }
    }

    /// `src(e)` of the generated edge.
    #[track_caller]
    pub fn gen_src(&self) -> VertexId {
        match self.gen {
            GenItem::Edge { src, .. } => src,
            other => panic!("no generated edge in {other:?}"),
        }
    }

    /// `trg(e)` of the generated edge.
    #[track_caller]
    pub fn gen_trg(&self) -> VertexId {
        match self.gen {
            GenItem::Edge { trg, .. } => trg,
            other => panic!("no generated edge in {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_roundtrip() {
        let mut e = EnvArr::default();
        assert_eq!(e.get(0), Val::Unset);
        e.set(0, Val::F(1.5));
        e.set(7, Val::OptV(None));
        assert_eq!(e.get(0), Val::F(1.5));
        assert_eq!(e.get(7), Val::OptV(None));
    }

    #[test]
    fn view_accessors() {
        let mut env = EnvArr::default();
        env.set(0, Val::U(9));
        env.set(1, Val::B(true));
        let view = EnvView {
            env: &env,
            v: 3,
            gen: GenItem::Edge {
                src: 3,
                trg: 5,
                eidx: 0,
                incoming: false,
            },
        };
        assert_eq!(view.u64(Slot(0)), 9);
        assert!(view.bool(Slot(1)));
        assert_eq!(view.input(), 3);
        assert_eq!(view.gen_src(), 3);
        assert_eq!(view.gen_trg(), 5);
    }

    #[test]
    #[should_panic(expected = "NULL vertex")]
    fn null_dereference_panics() {
        Val::OptV(None).as_vertex();
    }

    #[test]
    #[should_panic(expected = "read as f64")]
    fn type_confusion_panics() {
        Val::U(1).as_f64();
    }

    #[test]
    #[should_panic(expected = "no generated vertex")]
    fn missing_generator_item_panics() {
        let env = EnvArr::default();
        let view = EnvView {
            env: &env,
            v: 0,
            gen: GenItem::None,
        };
        view.gen_vertex();
    }
}

//! The `pattern` construct of the grammar (§III):
//!
//! ```text
//! <pattern>  ::= 'pattern' '{' <properties> <actions> '}'
//! <property> ::= <property-kind> '<' <type> '>' <name> ';'
//! ```
//!
//! [`PatternBuilder`] groups property declarations and actions under one
//! name and installs them collectively — creating the machine-shared
//! property maps, registering them with a fresh engine in declaration
//! order, and compiling every action — returning a [`Pattern`] that hands
//! out the typed maps and action ids by name.
//!
//! ```
//! use dgp_am::{Machine, MachineConfig};
//! use dgp_core::builder::ActionBuilder;
//! use dgp_core::engine::{EngineConfig, Val};
//! use dgp_core::ir::{GeneratorIr, Place};
//! use dgp_core::pattern::PatternBuilder;
//! use dgp_core::strategies::fixed_point;
//! use dgp_graph::{DistGraph, Distribution, EdgeList};
//!
//! let el = EdgeList::from_weighted(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
//! let graph = DistGraph::build(&el, Distribution::block(3, 2), false);
//! Machine::run(MachineConfig::new(2), move |ctx| {
//!     // pattern SSSP {
//!     //   vertex-property<distance> dist; edge-property<distance> weight;
//!     //   relax(Vertex v) { ... }
//!     // }
//!     let mut p = PatternBuilder::new("SSSP");
//!     let dist = p.vertex_property("dist", f64::INFINITY);
//!     let weight = p.edge_weights("weight");
//!     let mut b = ActionBuilder::new("relax", GeneratorIr::OutEdges);
//!     let d_t = b.read_vertex(dist, Place::GenTrg);
//!     let d_v = b.read_vertex(dist, Place::Input);
//!     let w_e = b.read_edge(weight);
//!     b.cond(&[d_t, d_v, w_e], move |e| e.f64(d_t) > e.f64(d_v) + e.f64(w_e))
//!         .assign(dist, Place::GenTrg, &[d_v, w_e], move |e, _| {
//!             Val::F(e.f64(d_v) + e.f64(w_e))
//!         });
//!     p.action(b.build().unwrap());
//!
//!     let sssp = p.install(ctx, &graph, Some(&el), EngineConfig::default()).unwrap();
//!     let dist_map = sssp.vertex_map::<f64>("dist");
//!     if ctx.rank() == graph.owner(0) {
//!         dist_map.set(ctx.rank(), 0, 0.0);
//!     }
//!     ctx.barrier();
//!     let seeds: Vec<_> = (graph.owner(0) == ctx.rank()).then_some(0).into_iter().collect();
//!     fixed_point(ctx, &sssp.engine, sssp.action("relax"), &seeds);
//!     if ctx.rank() == 0 {
//!         assert_eq!(dist_map.snapshot(), vec![0.0, 1.0, 2.0]);
//!     }
//! });
//! ```

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use dgp_am::AmCtx;
use dgp_graph::properties::{AtomicValue, AtomicVertexMap, EdgeMap, LockedVertexMap};
use dgp_graph::{DistGraph, EdgeList, VertexId};

use crate::builder::BuiltAction;
use crate::engine::{ActionId, EngineConfig, PatternEngine, ValCodec};
use crate::ir::MapId;

type PropInstaller = Box<
    dyn FnOnce(&AmCtx, &PatternEngine, Option<&EdgeList>) -> Result<Box<dyn Any + Send>, String>
        + Send,
>;

struct PropSpec {
    name: String,
    install: PropInstaller,
}

/// Declares a pattern: property maps plus actions, in grammar order.
pub struct PatternBuilder {
    name: String,
    props: Vec<PropSpec>,
    actions: Vec<BuiltAction>,
}

impl PatternBuilder {
    /// Start a pattern named `name`.
    pub fn new(name: impl Into<String>) -> PatternBuilder {
        PatternBuilder {
            name: name.into(),
            props: Vec::new(),
            actions: Vec::new(),
        }
    }

    fn next_id(&self) -> MapId {
        self.props.len() as MapId
    }

    /// `vertex-property<T> name;` — an atomic vertex map initialized to
    /// `init` on every vertex.
    pub fn vertex_property<T>(&mut self, name: impl Into<String>, init: T) -> MapId
    where
        T: ValCodec + AtomicValue,
    {
        let id = self.next_id();
        self.props.push(PropSpec {
            name: name.into(),
            install: Box::new(move |ctx, engine, _| {
                let map = ctx.share(|| AtomicVertexMap::new(engine.graph().distribution(), init));
                let got = engine.register_vertex_map(&map);
                assert_eq!(got, id, "properties register in declaration order");
                Ok(Box::new(map))
            }),
        });
        id
    }

    /// `vertex-property<set<Vertex>> name;` — a set-valued vertex map
    /// (usable as a `pmap-set` generator and with `insert` modifications).
    pub fn vertex_set(&mut self, name: impl Into<String>) -> MapId {
        let id = self.next_id();
        self.props.push(PropSpec {
            name: name.into(),
            install: Box::new(move |ctx, engine, _| {
                let map: LockedVertexMap<Vec<VertexId>> =
                    ctx.share(|| LockedVertexMap::new(engine.graph().distribution(), Vec::new()));
                let got = engine.register_set_map(&map);
                assert_eq!(got, id, "properties register in declaration order");
                Ok(Box::new(map))
            }),
        });
        id
    }

    /// `edge-property<distance> name;` — edge weights taken from the edge
    /// list passed to [`install`](Self::install).
    pub fn edge_weights(&mut self, name: impl Into<String>) -> MapId {
        let id = self.next_id();
        self.props.push(PropSpec {
            name: name.into(),
            install: Box::new(move |ctx, engine, el| {
                let el = el.ok_or(
                    "edge_weights requires the edge list to be passed at install".to_string(),
                )?;
                let map = ctx.share(|| EdgeMap::from_weights(engine.graph(), el));
                let got = engine.register_edge_map(&map);
                assert_eq!(got, id, "properties register in declaration order");
                Ok(Box::new(map))
            }),
        });
        id
    }

    /// Add an action (its name comes from the [`BuiltAction`]'s IR).
    pub fn action(&mut self, built: BuiltAction) -> &mut Self {
        self.actions.push(built);
        self
    }

    /// Collectively install: create the shared maps, register everything
    /// with a fresh engine, compile every action.
    pub fn install(
        self,
        ctx: &AmCtx,
        graph: &DistGraph,
        el: Option<&EdgeList>,
        cfg: EngineConfig,
    ) -> Result<Pattern, String> {
        let engine = PatternEngine::new(ctx, graph.clone(), cfg);
        let mut maps = HashMap::new();
        for spec in self.props {
            let handle = (spec.install)(ctx, &engine, el)?;
            if maps.insert(spec.name.clone(), handle).is_some() {
                return Err(format!(
                    "pattern {:?}: duplicate property {:?}",
                    self.name, spec.name
                ));
            }
        }
        let mut actions = HashMap::new();
        for built in self.actions {
            let name = built.ir.name.clone();
            let id = engine.add_action(built)?;
            if actions.insert(name.clone(), id).is_some() {
                return Err(format!(
                    "pattern {:?}: duplicate action {:?}",
                    self.name, name
                ));
            }
        }
        Ok(Pattern {
            name: Arc::new(self.name),
            engine,
            maps,
            actions,
        })
    }
}

/// An installed pattern: the engine, plus maps and actions by name.
pub struct Pattern {
    /// The pattern's name.
    pub name: Arc<String>,
    /// The engine everything was registered with.
    pub engine: PatternEngine,
    maps: HashMap<String, Box<dyn Any + Send>>,
    actions: HashMap<String, ActionId>,
}

impl Pattern {
    /// Action id by name.
    #[track_caller]
    pub fn action(&self, name: &str) -> ActionId {
        *self
            .actions
            .get(name)
            .unwrap_or_else(|| panic!("pattern {:?} has no action {name:?}", self.name))
    }

    /// Typed atomic vertex map by name.
    #[track_caller]
    pub fn vertex_map<T>(&self, name: &str) -> AtomicVertexMap<T>
    where
        T: ValCodec + AtomicValue,
    {
        self.maps
            .get(name)
            .unwrap_or_else(|| panic!("pattern {:?} has no property {name:?}", self.name))
            .downcast_ref::<AtomicVertexMap<T>>()
            .unwrap_or_else(|| panic!("property {name:?} has a different type"))
            .clone()
    }

    /// Set-valued vertex map by name.
    #[track_caller]
    pub fn set_map(&self, name: &str) -> LockedVertexMap<Vec<VertexId>> {
        self.maps
            .get(name)
            .unwrap_or_else(|| panic!("pattern {:?} has no property {name:?}", self.name))
            .downcast_ref::<LockedVertexMap<Vec<VertexId>>>()
            .unwrap_or_else(|| panic!("property {name:?} is not a vertex set"))
            .clone()
    }

    /// Edge map by name.
    #[track_caller]
    pub fn edge_map<T>(&self, name: &str) -> EdgeMap<T>
    where
        T: ValCodec + Clone + Send + Sync + 'static,
    {
        self.maps
            .get(name)
            .unwrap_or_else(|| panic!("pattern {:?} has no property {name:?}", self.name))
            .downcast_ref::<EdgeMap<T>>()
            .unwrap_or_else(|| panic!("property {name:?} is not an edge map"))
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ActionBuilder;
    use crate::engine::Val;
    use crate::ir::{GeneratorIr, Place};
    use crate::strategies::once;
    use dgp_am::{Machine, MachineConfig};
    use dgp_graph::Distribution;

    fn tiny() -> (EdgeList, DistGraph) {
        let el = EdgeList::from_weighted(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]);
        let graph = DistGraph::build(&el, Distribution::block(4, 2), false);
        (el, graph)
    }

    #[test]
    fn builds_and_retrieves_by_name() {
        let (el, graph) = tiny();
        Machine::run(MachineConfig::new(2), move |ctx| {
            let mut p = PatternBuilder::new("T");
            let flag = p.vertex_property("flag", false);
            let deg = p.vertex_property("deg", 0u64);
            let _set = p.vertex_set("marks");
            let w = p.edge_weights("w");
            let mut b = ActionBuilder::new("count", GeneratorIr::OutEdges);
            let d_v = b.read_vertex(deg, Place::Input);
            let w_e = b.read_edge(w);
            b.cond(&[d_v, w_e], move |e| e.f64(w_e) > 0.0).assign(
                deg,
                Place::Input,
                &[],
                move |_, old| Val::U(old.as_u64() + 1),
            );
            p.action(b.build().unwrap());
            let pat = p
                .install(ctx, &graph, Some(&el), EngineConfig::default())
                .unwrap();
            let _ = flag;
            let deg_map = pat.vertex_map::<u64>("deg");
            let _ = pat.set_map("marks");
            let _ = pat.edge_map::<f64>("w");
            let locals: Vec<_> = graph.distribution().owned(ctx.rank()).collect();
            once(ctx, &pat.engine, pat.action("count"), &locals);
            if ctx.rank() == 0 {
                assert_eq!(deg_map.snapshot(), vec![1, 1, 1, 0]);
            }
            ctx.barrier();
        });
    }

    #[test]
    fn wrong_type_retrieval_panics() {
        let (el, graph) = tiny();
        let r = std::panic::catch_unwind(move || {
            Machine::run(MachineConfig::new(1), move |ctx| {
                let mut p = PatternBuilder::new("T");
                let x = p.vertex_property("x", 0u64);
                let mut b = ActionBuilder::new("noop", GeneratorIr::None);
                let xs = b.read_vertex(x, Place::Input);
                b.cond(&[xs], move |e| e.u64(xs) == 1)
                    .assign(x, Place::Input, &[], |_, _| Val::U(0));
                p.action(b.build().unwrap());
                let pat = p
                    .install(ctx, &graph, Some(&el), EngineConfig::default())
                    .unwrap();
                let _wrong = pat.vertex_map::<f64>("x"); // panics
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let (el, graph) = tiny();
        Machine::run(MachineConfig::new(1), move |ctx| {
            let mut p = PatternBuilder::new("T");
            p.vertex_property("x", 0u64);
            p.vertex_property("x", 1u64);
            let err = match p.install(ctx, &graph, Some(&el), EngineConfig::default()) {
                Err(e) => e,
                Ok(_) => panic!("duplicate property accepted"),
            };
            assert!(err.contains("duplicate property"), "{err}");
        });
    }
}

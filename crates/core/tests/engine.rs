//! Engine-level tests: drive the plan interpreter directly through small,
//! hand-analyzable patterns, covering every step kind and branch shape.

use dgp_am::{AmCtx, Machine, MachineConfig};
use dgp_core::builder::ActionBuilder;
use dgp_core::engine::{EngineConfig, PatternEngine, SyncMode, Val};
use dgp_core::ir::{GeneratorIr, Place};
use dgp_core::plan::PlanMode;
use dgp_core::strategies::{fixed_point, once};
use dgp_graph::properties::{AtomicVertexMap, EdgeMap, LockedVertexMap};
use dgp_graph::{DistGraph, Distribution, EdgeList, VertexId};

fn line_graph(n: u64, ranks: usize) -> DistGraph {
    let mut el = EdgeList::new(n);
    for v in 0..n - 1 {
        el.push(v, v + 1);
    }
    DistGraph::build(&el, Distribution::block(n, ranks), false)
}

fn with_machine<R: Send>(ranks: usize, f: impl Fn(&AmCtx) -> Option<R> + Send + Sync) -> R {
    let mut out = Machine::run(MachineConfig::new(ranks), f);
    out.remove(0).expect("rank 0 reports")
}

/// Else-chains: `if (x==1) {a=10} else if (x==2) {a=20} else if (true) {a=30}`
/// — exactly one branch fires per vertex.
#[test]
fn else_chain_takes_first_true_branch() {
    let result = with_machine(2, |ctx| {
        let graph = line_graph(6, 2);
        let x = ctx.share(|| AtomicVertexMap::new(graph.distribution(), 0u64));
        let a = ctx.share(|| AtomicVertexMap::new(graph.distribution(), 0u64));
        // x[v] = v % 3
        for v in graph.distribution().owned(ctx.rank()) {
            x.set(ctx.rank(), v, v % 3);
        }
        ctx.barrier();

        let engine = PatternEngine::new(ctx, graph.clone(), EngineConfig::default());
        let x_id = engine.register_vertex_map(&x);
        let a_id = engine.register_vertex_map(&a);

        let mut b = ActionBuilder::new("chain", GeneratorIr::None);
        let xs = b.read_vertex(x_id, Place::Input);
        b.cond(&[xs], move |e| e.u64(xs) == 1)
            .assign(a_id, Place::Input, &[], |_, _| Val::U(10));
        b.else_cond(&[xs], move |e| e.u64(xs) == 2)
            .assign(a_id, Place::Input, &[], |_, _| Val::U(20));
        b.else_cond(&[xs], move |_| true)
            .assign(a_id, Place::Input, &[], |_, _| Val::U(30));
        let action = engine.add_action(b.build().unwrap()).unwrap();

        let locals: Vec<VertexId> = graph.distribution().owned(ctx.rank()).collect();
        once(ctx, &engine, action, &locals);
        (ctx.rank() == 0).then(|| a.snapshot())
    });
    // x = [0,1,2,0,1,2] -> a = [30,10,20,30,10,20]
    assert_eq!(result, vec![30, 10, 20, 30, 10, 20]);
}

/// Non-else condition sequences: both `if`s run when the first fires (a
/// true condition chains to the next NON-else condition).
#[test]
fn independent_conditions_both_fire() {
    let result = with_machine(1, |ctx| {
        let graph = line_graph(3, 1);
        let x = ctx.share(|| AtomicVertexMap::new(graph.distribution(), 5u64));
        let a = ctx.share(|| AtomicVertexMap::new(graph.distribution(), 0u64));
        let b_map = ctx.share(|| AtomicVertexMap::new(graph.distribution(), 0u64));
        let engine = PatternEngine::new(ctx, graph.clone(), EngineConfig::default());
        let x_id = engine.register_vertex_map(&x);
        let a_id = engine.register_vertex_map(&a);
        let b_id = engine.register_vertex_map(&b_map);

        let mut bld = ActionBuilder::new("two_ifs", GeneratorIr::None);
        let xs = bld.read_vertex(x_id, Place::Input);
        bld.cond(&[xs], move |e| e.u64(xs) > 0)
            .assign(a_id, Place::Input, &[xs], move |e, _| Val::U(e.u64(xs)));
        bld.cond(&[xs], move |e| e.u64(xs) > 1)
            .assign(b_id, Place::Input, &[xs], move |e, _| Val::U(e.u64(xs) * 2));
        let action = engine.add_action(bld.build().unwrap()).unwrap();

        once(ctx, &engine, action, &[0]);
        Some((a.get(0, 0), b_map.get(0, 0)))
    });
    assert_eq!(result, (5, 10));
}

/// Unmerged conditions: a modification group whose reads live at a
/// locality *outside* the condition's localities cannot merge; the plan
/// must Eval first, then gather and ModifyGroup.
#[test]
fn unmerged_modification_group_executes() {
    let result = with_machine(2, |ctx| {
        // Edge 0 -> 1. Condition reads flag[v]; modification writes
        // out[trg(e)] = aux[trg(e)] + 1 where aux is NOT read by the test.
        let graph = line_graph(2, 2);
        let flag = ctx.share(|| AtomicVertexMap::new(graph.distribution(), true));
        let aux = ctx.share(|| AtomicVertexMap::new(graph.distribution(), 41u64));
        let out = ctx.share(|| AtomicVertexMap::new(graph.distribution(), 0u64));
        let engine = PatternEngine::new(ctx, graph.clone(), EngineConfig::default());
        let flag_id = engine.register_vertex_map(&flag);
        let aux_id = engine.register_vertex_map(&aux);
        let out_id = engine.register_vertex_map(&out);

        let mut b = ActionBuilder::new("unmerged", GeneratorIr::OutEdges);
        let f_v = b.read_vertex(flag_id, Place::Input);
        let aux_t = b.read_vertex(aux_id, Place::GenTrg);
        b.cond(&[f_v], move |e| e.bool(f_v)).assign(
            out_id,
            Place::GenTrg,
            &[aux_t],
            move |e, _| Val::U(e.u64(aux_t) + 1),
        );
        let built = b.build().unwrap();
        // The group reads aux[trg(e)] (locality GenTrg), which is not among
        // the condition's localities ({Input}) -> no merge.
        let engine_plan = dgp_core::plan::compile(&built.ir, PlanMode::Optimized).unwrap();
        assert_eq!(engine_plan.merged, vec![false]);
        let action = engine.add_action(built).unwrap();

        let seeds: Vec<_> = (graph.owner(0) == ctx.rank())
            .then_some(0)
            .into_iter()
            .collect();
        once(ctx, &engine, action, &seeds);
        (ctx.rank() == 0).then(|| out.snapshot())
    });
    assert_eq!(result, vec![0, 42]);
}

/// Two modification groups at different localities in one condition, plus
/// pointer-indirected targets (the CC conflict shape).
#[test]
fn multi_group_modifications_at_pointer_targets() {
    let result = with_machine(3, |ctx| {
        // Graph: 0 -> 1. ptr[0] = 2, ptr[1] = 3 (pointers to "roots").
        // Action at v over out-edges: if ptr[u] != ptr[v]:
        //   tag[ptr[u]].insert(ptr[v]); tag[ptr[v]].insert(ptr[u])
        let el = EdgeList::from_pairs(4, &[(0, 1)]);
        let graph = DistGraph::build(&el, Distribution::cyclic(4, 3), false);
        let ptr = ctx.share(|| AtomicVertexMap::new(graph.distribution(), 0u64));
        let tag = ctx.share(|| LockedVertexMap::new(graph.distribution(), Vec::new()));
        // ptr[0]=2, ptr[1]=3 (set by owners).
        let r = ctx.rank();
        if graph.owner(0) == r {
            ptr.set(r, 0, 2);
        }
        if graph.owner(1) == r {
            ptr.set(r, 1, 3);
        }
        ctx.barrier();

        let engine = PatternEngine::new(ctx, graph.clone(), EngineConfig::default());
        let ptr_id = engine.register_vertex_map(&ptr);
        let tag_id = engine.register_set_map(&tag);

        let mut b = ActionBuilder::new("conflict", GeneratorIr::OutEdges);
        let p_v = b.read_vertex(ptr_id, Place::Input);
        let p_u = b.read_vertex(ptr_id, Place::GenTrg);
        let root_u = Place::map_at(ptr_id, Place::GenTrg);
        let root_v = Place::map_at(ptr_id, Place::Input);
        b.cond(&[p_v, p_u], move |e| e.u64(p_u) != e.u64(p_v))
            .insert(tag_id, root_u, &[p_v], move |e, _| Val::U(e.u64(p_v)))
            .insert(tag_id, root_v, &[p_u], move |e, _| Val::U(e.u64(p_u)));
        let action = engine.add_action(b.build().unwrap()).unwrap();

        let seeds: Vec<_> = (graph.owner(0) == ctx.rank())
            .then_some(0)
            .into_iter()
            .collect();
        once(ctx, &engine, action, &seeds);
        (ctx.rank() == 0).then(|| tag.snapshot())
    });
    // Conflict recorded symmetrically at both roots (2 and 3).
    assert_eq!(result, vec![vec![], vec![], vec![3], vec![2]]);
}

/// The MapSet generator: fan out over vertices stored in a set-valued
/// property instead of graph edges.
#[test]
fn mapset_generator_fans_out() {
    let result = with_machine(2, |ctx| {
        let graph = line_graph(5, 2);
        let friends = ctx.share(|| LockedVertexMap::new(graph.distribution(), Vec::new()));
        let pinged = ctx.share(|| AtomicVertexMap::new(graph.distribution(), 0u64));
        let r = ctx.rank();
        if graph.owner(0) == r {
            friends.set(r, 0, vec![2, 3, 4]);
        }
        ctx.barrier();

        let engine = PatternEngine::new(ctx, graph.clone(), EngineConfig::default());
        let friends_id = engine.register_set_map(&friends);
        let pinged_id = engine.register_vertex_map(&pinged);

        let mut b = ActionBuilder::new("ping", GeneratorIr::MapSet(friends_id));
        let p_u = b.read_vertex(pinged_id, Place::GenVertex);
        b.cond(&[p_u], move |e| e.u64(p_u) == 0).assign(
            pinged_id,
            Place::GenVertex,
            &[],
            move |e, _| Val::U(e.input() + 100),
        );
        let action = engine.add_action(b.build().unwrap()).unwrap();

        let seeds: Vec<_> = (graph.owner(0) == r).then_some(0).into_iter().collect();
        once(ctx, &engine, action, &seeds);
        (ctx.rank() == 0).then(|| pinged.snapshot())
    });
    assert_eq!(result, vec![0, 0, 100, 100, 100]);
}

/// The in_edges generator on a bidirectional graph, with co-located edge
/// properties read from the in-aligned copy.
#[test]
fn in_edges_generator_with_edge_props() {
    let result = with_machine(2, |ctx| {
        // Edges into vertex 3: (0,3,w=5), (1,3,w=7).
        let el = EdgeList::from_weighted(4, &[(0, 3, 5.0), (1, 3, 7.0), (3, 2, 1.0)]);
        let graph = ctx.share(|| DistGraph::build(&el, Distribution::block(4, 2), true));
        let weights = ctx.share(|| EdgeMap::from_weights(&graph, &el));
        let acc = ctx.share(|| AtomicVertexMap::new(graph.distribution(), 0.0f64));
        let engine = PatternEngine::new(ctx, graph.clone(), EngineConfig::default());
        let w_id = engine.register_edge_map(&weights);
        let acc_id = engine.register_vertex_map(&acc);

        // pull(v): for e in in_edges: acc[src(e)] += weight[e]
        let mut b = ActionBuilder::new("pull", GeneratorIr::InEdges);
        let w_e = b.read_edge(w_id);
        b.cond(&[w_e], move |e| e.f64(w_e) > 0.0).assign(
            acc_id,
            Place::GenSrc,
            &[w_e],
            move |e, old| Val::F(old.as_f64() + e.f64(w_e)),
        );
        let action = engine.add_action(b.build().unwrap()).unwrap();

        let seeds: Vec<_> = (graph.owner(3) == ctx.rank())
            .then_some(3)
            .into_iter()
            .collect();
        once(ctx, &engine, action, &seeds);
        (ctx.rank() == 0).then(|| acc.snapshot())
    });
    assert_eq!(result, vec![5.0, 7.0, 0.0, 0.0]);
}

/// Work hooks: fire exactly once per changed dependent vertex, at its
/// owner, and not for unchanged modifications.
#[test]
fn work_hooks_fire_per_change_at_owner() {
    let fired = std::sync::Arc::new(parking_lot::Mutex::new(Vec::<(usize, VertexId)>::new()));
    let f2 = fired.clone();
    Machine::run(MachineConfig::new(2), move |ctx| {
        let fired = f2.clone();
        let graph = line_graph(4, 2);
        let lvl = ctx.share(|| AtomicVertexMap::new(graph.distribution(), u64::MAX));
        let engine = PatternEngine::new(ctx, graph.clone(), EngineConfig::default());
        let lvl_id = engine.register_vertex_map(&lvl);

        let mut b = ActionBuilder::new("expand", GeneratorIr::OutEdges);
        let l_t = b.read_vertex(lvl_id, Place::GenTrg);
        let l_v = b.read_vertex(lvl_id, Place::Input);
        b.cond(&[l_t, l_v], move |e| {
            e.u64(l_v) != u64::MAX && e.u64(l_t) > e.u64(l_v) + 1
        })
        .assign(lvl_id, Place::GenTrg, &[l_v], move |e, _| {
            Val::U(e.u64(l_v) + 1)
        });
        let action = engine.add_action(b.build().unwrap()).unwrap();

        let rank = ctx.rank();
        if graph.owner(0) == rank {
            lvl.set(rank, 0, 0);
        }
        ctx.barrier();
        let eng2 = engine.clone();
        let fired2 = fired.clone();
        engine.set_work_hook(
            action,
            std::sync::Arc::new(move |hctx, v| {
                fired2.lock().push((hctx.rank(), v));
                eng2.run_at(hctx, action, v);
            }),
        );
        ctx.epoch(|ctx| {
            if graph.owner(0) == ctx.rank() {
                engine.invoke(ctx, action, 0);
            }
        });
        // Re-running from quiescence changes nothing: no hook fires.
        let before = fired.lock().len();
        ctx.epoch(|ctx| {
            if graph.owner(0) == ctx.rank() {
                engine.invoke(ctx, action, 0);
            }
        });
        assert_eq!(fired.lock().len(), before, "no new dependencies");
    });
    let mut events = fired.lock().clone();
    events.sort_unstable();
    // Vertices 1,2,3 were each improved exactly once, at their owner
    // (block(4,2): rank0 owns 0-1, rank1 owns 2-3).
    assert_eq!(events, vec![(0, 1), (1, 2), (1, 3)]);
}

/// The atomic fast path and the lock-map path produce identical results
/// under handler concurrency (many racing improvements of one cell).
#[test]
fn atomic_and_lock_paths_agree_under_contention() {
    let mut snapshots = Vec::new();
    for sync in [SyncMode::Atomic, SyncMode::LockMap] {
        let result = with_machine(2, move |ctx| {
            // Star into vertex 9: edges (i, 9) weight i -> dist[9] should
            // become min over seeds.
            let mut el = EdgeList::new(10);
            for i in 0..9 {
                el.push_weighted(i, 9, (9 - i) as f64);
            }
            let graph = ctx.share(|| DistGraph::build(&el, Distribution::block(10, 2), false));
            let weights = ctx.share(|| EdgeMap::from_weights(&graph, &el));
            let dist = ctx.share(|| AtomicVertexMap::new(graph.distribution(), f64::INFINITY));
            let engine = PatternEngine::new(
                ctx,
                graph.clone(),
                EngineConfig {
                    sync,
                    ..EngineConfig::default()
                },
            );
            let d_id = engine.register_vertex_map(&dist);
            let w_id = engine.register_edge_map(&weights);
            let action = engine.add_action(dgp_algorithms_relax(d_id, w_id)).unwrap();
            let rank = ctx.rank();
            for v in graph.distribution().owned(rank) {
                if v < 9 {
                    dist.set(rank, v, 0.0);
                }
            }
            ctx.barrier();
            let seeds: Vec<_> = graph
                .distribution()
                .owned(rank)
                .filter(|&v| v < 9)
                .collect();
            fixed_point(ctx, &engine, action, &seeds);
            (ctx.rank() == 0).then(|| dist.snapshot())
        });
        snapshots.push(result);
    }
    assert_eq!(snapshots[0], snapshots[1]);
    assert_eq!(snapshots[0][9], 1.0); // min over (9 - i)
}

// A local copy of the SSSP relax builder (dgp-core tests cannot depend on
// dgp-algorithms without a cycle).
fn dgp_algorithms_relax(
    dist: dgp_core::ir::MapId,
    weight: dgp_core::ir::MapId,
) -> dgp_core::builder::BuiltAction {
    let mut b = ActionBuilder::new("relax", GeneratorIr::OutEdges);
    let d_trg = b.read_vertex(dist, Place::GenTrg);
    let d_v = b.read_vertex(dist, Place::Input);
    let w_e = b.read_edge(weight);
    b.cond(&[d_trg, d_v, w_e], move |e| {
        e.f64(d_trg) > e.f64(d_v) + e.f64(w_e)
    })
    .assign(dist, Place::GenTrg, &[d_v, w_e], move |e, _| {
        Val::F(e.f64(d_v) + e.f64(w_e))
    });
    b.build().unwrap()
}

/// Faithful and optimized plan modes execute to identical results (the
/// extra return hops are semantically inert).
#[test]
fn plan_modes_execute_identically() {
    let mut results = Vec::new();
    for mode in [PlanMode::Faithful, PlanMode::Optimized] {
        let result = with_machine(2, move |ctx| {
            // comp[v] = lbl[pnt[v]] — the two-hop CC rewrite shape.
            let graph = line_graph(4, 2);
            let pnt = ctx.share(|| AtomicVertexMap::new(graph.distribution(), 0u64));
            let lbl = ctx.share(|| AtomicVertexMap::new(graph.distribution(), 0u64));
            let comp = ctx.share(|| AtomicVertexMap::new(graph.distribution(), u64::MAX));
            let r = ctx.rank();
            for v in graph.distribution().owned(r) {
                pnt.set(r, v, (v + 1) % 4); // pointer ring
                lbl.set(r, v, v * 10);
            }
            ctx.barrier();
            let engine = PatternEngine::new(
                ctx,
                graph.clone(),
                EngineConfig {
                    plan_mode: mode,
                    ..EngineConfig::default()
                },
            );
            let pnt_id = engine.register_vertex_map(&pnt);
            let lbl_id = engine.register_vertex_map(&lbl);
            let comp_id = engine.register_vertex_map(&comp);
            let mut b = ActionBuilder::new("rewrite", GeneratorIr::None);
            let p_v = b.read_vertex(pnt_id, Place::Input);
            let l_p = b.read_vertex(lbl_id, Place::map_at(pnt_id, Place::Input));
            let c_v = b.read_vertex(comp_id, Place::Input);
            b.cond(&[p_v, l_p, c_v], move |e| e.u64(c_v) != e.u64(l_p))
                .assign(comp_id, Place::Input, &[l_p], move |e, _| {
                    Val::U(e.u64(l_p))
                });
            let action = engine.add_action(b.build().unwrap()).unwrap();
            let locals: Vec<_> = graph.distribution().owned(r).collect();
            once(ctx, &engine, action, &locals);
            (ctx.rank() == 0).then(|| comp.snapshot())
        });
        results.push(result);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], vec![10, 20, 30, 0]); // lbl[(v+1)%4]
}

/// Engine statistics count what actually happened.
#[test]
fn engine_stats_are_exact() {
    with_machine(1, |ctx| {
        let graph = line_graph(3, 1); // edges 0->1->2
        let lvl = ctx.share(|| AtomicVertexMap::new(graph.distribution(), u64::MAX));
        lvl.set(0, 0, 0);
        let engine = PatternEngine::new(ctx, graph.clone(), EngineConfig::default());
        let lvl_id = engine.register_vertex_map(&lvl);
        let action = engine
            .add_action({
                let mut b = ActionBuilder::new("expand", GeneratorIr::OutEdges);
                let l_t = b.read_vertex(lvl_id, Place::GenTrg);
                let l_v = b.read_vertex(lvl_id, Place::Input);
                b.cond(&[l_t, l_v], move |e| {
                    e.u64(l_v) != u64::MAX && e.u64(l_t) > e.u64(l_v) + 1
                })
                .assign(lvl_id, Place::GenTrg, &[l_v], move |e, _| {
                    Val::U(e.u64(l_v) + 1)
                });
                b.build().unwrap()
            })
            .unwrap();
        fixed_point(ctx, &engine, action, &[0]);
        let s = engine.stats();
        // Actions: start at 0, then hooks at 1 and 2 = 3 starts.
        assert_eq!(s.actions_started, 3);
        // Edges examined: out(0)=1, out(1)=1, out(2)=0 = 2 instances.
        assert_eq!(s.items_generated, 2);
        assert_eq!(s.conditions_true, 2);
        assert_eq!(s.conditions_false, 0);
        assert_eq!(s.modifications_changed, 2);
        assert_eq!(s.dependencies_fired, 2);
        Some(())
    });
}

/// The weight-filtered out-edge generator (§II-A light/heavy split) only
/// expands matching edges, and light/heavy partition the edge set.
#[test]
fn filtered_generator_partitions_edges() {
    let result = with_machine(2, |ctx| {
        let el = EdgeList::from_weighted(5, &[(0, 1, 0.2), (0, 2, 0.9), (0, 3, 0.5), (0, 4, 1.5)]);
        let graph = ctx.share(|| DistGraph::build(&el, Distribution::block(5, 2), false));
        let weights = ctx.share(|| EdgeMap::from_weights(&graph, &el));
        let touched = ctx.share(|| AtomicVertexMap::new(graph.distribution(), 0u64));
        let engine = PatternEngine::new(ctx, graph.clone(), EngineConfig::default());
        let w_id = engine.register_edge_map(&weights);
        let t_id = engine.register_vertex_map(&touched);

        let mk = |light: bool, tag: u64| {
            let gen = if light {
                dgp_core::ir::GeneratorIr::out_edges_light(w_id, 0.5)
            } else {
                dgp_core::ir::GeneratorIr::out_edges_heavy(w_id, 0.5)
            };
            let mut b = ActionBuilder::new(if light { "light" } else { "heavy" }, gen);
            let t_trg = b.read_vertex(t_id, Place::GenTrg);
            b.cond(&[t_trg], move |_| true)
                .assign(t_id, Place::GenTrg, &[], move |_, old| {
                    Val::U(old.as_u64() + tag)
                });
            b.build().unwrap()
        };
        let light = engine.add_action(mk(true, 1)).unwrap();
        let heavy = engine.add_action(mk(false, 100)).unwrap();

        let seeds: Vec<_> = (graph.owner(0) == ctx.rank())
            .then_some(0)
            .into_iter()
            .collect();
        once(ctx, &engine, light, &seeds);
        once(ctx, &engine, heavy, &seeds);
        (ctx.rank() == 0).then(|| touched.snapshot())
    });
    // Weights: 1<-0.2 (light), 2<-0.9 (heavy), 3<-0.5 (light, inclusive),
    // 4<-1.5 (heavy).
    assert_eq!(result, vec![0, 1, 100, 1, 100]);
}

//! Planner soundness: for randomized valid actions, the compiled message
//! program never reads a payload slot before some step on the same path
//! has gathered it — checked by abstractly interpreting every path of the
//! plan (both branches of every condition).

use proptest::prelude::*;

use dgp_core::plan::{compile, verify, PlanMode};

mod common;
use common::arb_action;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiled_plans_never_read_unset_slots(
        ir in arb_action(),
        mode in prop::sample::select(vec![PlanMode::Faithful, PlanMode::Optimized]),
    ) {
        // Some random actions exceed slot limits or miss resolution reads
        // after truncation; those must *fail cleanly*, not miscompile.
        if let Ok(plan) = compile(&ir, mode) {
            // compile() already verifies in debug builds; re-check here so
            // the property also holds under release test runs.
            if let Err(e) = verify(&ir, &plan) {
                prop_assert!(false, "{ir:?}\n{e}");
            }
        }
    }

    /// Message counts: optimized never exceeds faithful.
    #[test]
    fn optimized_never_costs_more(ir in arb_action()) {
        let f = compile(&ir, PlanMode::Faithful);
        let o = compile(&ir, PlanMode::Optimized);
        if let (Ok(f), Ok(o)) = (f, o) {
            prop_assert!(
                o.comm_plan().messages <= f.comm_plan().messages,
                "optimized {} > faithful {}\n{o}\n{f}",
                o.comm_plan().messages,
                f.comm_plan().messages
            );
        }
    }
}

//! Planner soundness: for randomized valid actions, the compiled message
//! program never reads a payload slot before some step on the same path
//! has gathered it — checked by abstractly interpreting every path of the
//! plan (both branches of every condition).

use proptest::prelude::*;

use dgp_core::ir::{
    ActionIr, ConditionIr, GeneratorIr, MapId, ModificationIr, Place, ReadRef, Slot,
};
use dgp_core::plan::{compile, verify, PlanMode};

/// All places a generator makes legal.
fn legal_places(generator: GeneratorIr, pointer_maps: &[MapId]) -> Vec<Place> {
    let mut base = vec![Place::Input];
    match generator {
        GeneratorIr::OutEdges | GeneratorIr::InEdges | GeneratorIr::OutEdgesFiltered { .. } => {
            base.push(Place::GenSrc);
            base.push(Place::GenTrg);
        }
        GeneratorIr::Adj | GeneratorIr::MapSet(_) => base.push(Place::GenVertex),
        GeneratorIr::None => {}
    }
    // One level of pointer indirection through each pointer map.
    let mut out = base.clone();
    for &m in pointer_maps {
        for b in &base {
            out.push(Place::map_at(m, b.clone()));
        }
    }
    out
}

fn arb_action() -> impl Strategy<Value = ActionIr> {
    // Maps 0..3 are value maps; maps 10..12 are vertex-valued pointer maps.
    let generators = prop::sample::select(vec![
        GeneratorIr::None,
        GeneratorIr::OutEdges,
        GeneratorIr::InEdges,
        GeneratorIr::Adj,
    ]);
    (
        generators,
        proptest::collection::vec((0u32..3, 0usize..8), 1..4), // conditions: (value map, place pick)
        proptest::collection::vec(any::<bool>(), 0..3),        // else flags for conditions 1..
        0usize..3,                                             // pointer maps used
    )
        .prop_map(|(generator, cond_specs, elses, n_pointers)| {
            let pointer_maps: Vec<MapId> = (0..n_pointers as u32).map(|i| 10 + i).collect();
            let places = legal_places(generator, &pointer_maps);

            let mut slots: Vec<ReadRef> = Vec::new();
            let intern = |r: ReadRef, slots: &mut Vec<ReadRef>| -> Slot {
                if let Some(i) = slots.iter().position(|s| *s == r) {
                    Slot(i)
                } else {
                    slots.push(r);
                    Slot(slots.len() - 1)
                }
            };
            // Pointer-resolution reads must be declared for any MapAt place.
            let declare_resolution = |p: &Place, slots: &mut Vec<ReadRef>| {
                if let Place::MapAt(m, inner) = p {
                    intern(
                        ReadRef::VertexProp {
                            map: *m,
                            at: (**inner).clone(),
                        },
                        slots,
                    );
                }
            };

            let mut conditions = Vec::new();
            for (ci, &(vmap, pick)) in cond_specs.iter().enumerate() {
                let read_place = places[pick % places.len()].clone();
                declare_resolution(&read_place, &mut slots);
                let read_slot = intern(
                    ReadRef::VertexProp {
                        map: vmap,
                        at: read_place,
                    },
                    &mut slots,
                );
                let mod_place = places[(pick + ci) % places.len()].clone();
                declare_resolution(&mod_place, &mut slots);
                // Cap total slots at the engine budget.
                if slots.len() > 7 {
                    slots.truncate(7);
                }
                let is_else = ci > 0 && elses.get(ci - 1).copied().unwrap_or(false);
                conditions.push(ConditionIr {
                    reads: vec![Slot(read_slot.0.min(slots.len() - 1))],
                    mods: vec![ModificationIr {
                        map: 5, // a write-only output map
                        at: mod_place,
                        reads: vec![Slot(read_slot.0.min(slots.len() - 1))],
                    }],
                    is_else,
                });
            }
            ActionIr {
                name: "random".into(),
                generator,
                slots,
                conditions,
            }
        })
        .prop_filter("action must validate", |ir| ir.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiled_plans_never_read_unset_slots(
        ir in arb_action(),
        mode in prop::sample::select(vec![PlanMode::Faithful, PlanMode::Optimized]),
    ) {
        // Some random actions exceed slot limits or miss resolution reads
        // after truncation; those must *fail cleanly*, not miscompile.
        if let Ok(plan) = compile(&ir, mode) {
            // compile() already verifies in debug builds; re-check here so
            // the property also holds under release test runs.
            if let Err(e) = verify(&ir, &plan) {
                prop_assert!(false, "{ir:?}\n{e}");
            }
        }
    }

    /// Message counts: optimized never exceeds faithful.
    #[test]
    fn optimized_never_costs_more(ir in arb_action()) {
        let f = compile(&ir, PlanMode::Faithful);
        let o = compile(&ir, PlanMode::Optimized);
        if let (Ok(f), Ok(o)) = (f, o) {
            prop_assert!(
                o.comm_plan().messages <= f.comm_plan().messages,
                "optimized {} > faithful {}\n{o}\n{f}",
                o.comm_plan().messages,
                f.comm_plan().messages
            );
        }
    }
}

//! Shared random-pattern generators for the property suites.
//!
//! Two tiers:
//!
//! * [`arb_action`] — *arbitrary IR*: random [`ActionIr`] values used to
//!   probe the planner and verifier over the full IR space, including
//!   shapes that fail to validate or compile (those must fail cleanly).
//! * [`arb_runtime_spec`] — *runtime-safe specs*: random [`ActionSpec`]s
//!   built through [`ActionBuilder`] with real closures, restricted to
//!   shapes a [`PatternEngine`](dgp_core::engine::PatternEngine) can
//!   actually execute on a small graph (u64 value maps, one
//!   vertex-valued pointer map, no edge-property reads). These drive the
//!   differential test: statically-clean specs must never trip the
//!   engine's dynamic locality cross-validator.

#![allow(dead_code)]

use proptest::prelude::*;

use dgp_core::builder::{ActionBuilder, BuildError, BuiltAction};
use dgp_core::engine::Val;
use dgp_core::ir::{
    ActionIr, ConditionIr, GeneratorIr, MapId, ModKind, ModificationIr, Place, ReadRef, Slot,
};

/// All places a generator makes legal.
pub fn legal_places(generator: GeneratorIr, pointer_maps: &[MapId]) -> Vec<Place> {
    let mut base = vec![Place::Input];
    match generator {
        GeneratorIr::OutEdges | GeneratorIr::InEdges | GeneratorIr::OutEdgesFiltered { .. } => {
            base.push(Place::GenSrc);
            base.push(Place::GenTrg);
        }
        GeneratorIr::Adj | GeneratorIr::MapSet(_) => base.push(Place::GenVertex),
        GeneratorIr::None => {}
    }
    // One level of pointer indirection through each pointer map.
    let mut out = base.clone();
    for &m in pointer_maps {
        for b in &base {
            out.push(Place::map_at(m, b.clone()));
        }
    }
    out
}

/// Arbitrary (not necessarily executable) action IR. Maps 0..3 are value
/// maps, map 5 is a write-only output map, maps 10..12 are vertex-valued
/// pointer maps.
pub fn arb_action() -> impl Strategy<Value = ActionIr> {
    let generators = prop::sample::select(vec![
        GeneratorIr::None,
        GeneratorIr::OutEdges,
        GeneratorIr::InEdges,
        GeneratorIr::Adj,
    ]);
    (
        generators,
        proptest::collection::vec((0u32..3, 0usize..8), 1..4), // conditions: (value map, place pick)
        proptest::collection::vec(any::<bool>(), 0..3),        // else flags for conditions 1..
        0usize..3,                                             // pointer maps used
    )
        .prop_map(|(generator, cond_specs, elses, n_pointers)| {
            let pointer_maps: Vec<MapId> = (0..n_pointers as u32).map(|i| 10 + i).collect();
            let places = legal_places(generator, &pointer_maps);

            let mut slots: Vec<ReadRef> = Vec::new();
            let intern = |r: ReadRef, slots: &mut Vec<ReadRef>| -> Slot {
                if let Some(i) = slots.iter().position(|s| *s == r) {
                    Slot(i)
                } else {
                    slots.push(r);
                    Slot(slots.len() - 1)
                }
            };
            // Pointer-resolution reads must be declared for any MapAt place.
            let declare_resolution = |p: &Place, slots: &mut Vec<ReadRef>| {
                if let Place::MapAt(m, inner) = p {
                    intern(
                        ReadRef::VertexProp {
                            map: *m,
                            at: (**inner).clone(),
                        },
                        slots,
                    );
                }
            };

            let mut conditions = Vec::new();
            for (ci, &(vmap, pick)) in cond_specs.iter().enumerate() {
                let read_place = places[pick % places.len()].clone();
                declare_resolution(&read_place, &mut slots);
                let read_slot = intern(
                    ReadRef::VertexProp {
                        map: vmap,
                        at: read_place,
                    },
                    &mut slots,
                );
                let mod_place = places[(pick + ci) % places.len()].clone();
                declare_resolution(&mod_place, &mut slots);
                // Cap total slots at the engine budget.
                if slots.len() > 7 {
                    slots.truncate(7);
                }
                let is_else = ci > 0 && elses.get(ci - 1).copied().unwrap_or(false);
                conditions.push(ConditionIr {
                    reads: vec![Slot(read_slot.0.min(slots.len() - 1))],
                    mods: vec![ModificationIr {
                        map: 5, // a write-only output map
                        at: mod_place,
                        reads: vec![Slot(read_slot.0.min(slots.len() - 1))],
                        kind: ModKind::Assign,
                    }],
                    is_else,
                });
            }
            ActionIr {
                name: "random".into(),
                generator,
                slots,
                conditions,
            }
        })
        .prop_filter("action must validate", |ir| ir.validate().is_ok())
}

/// How many u64 value maps a runtime spec may touch (map ids `0..4`).
pub const RUNTIME_VALUE_MAPS: u32 = 4;
/// The vertex-valued pointer map's id in a runtime spec (registered
/// fifth, initialized to valid vertex ids, never written).
pub const RUNTIME_POINTER_MAP: u32 = 4;

/// One condition of a runtime-safe spec.
#[derive(Debug, Clone)]
pub struct CondSpec {
    /// Value map the condition reads (`0..=RUNTIME_POINTER_MAP`).
    pub read_map: MapId,
    /// Where it reads it.
    pub read_at: Place,
    /// Value map the modification assigns (`0..RUNTIME_VALUE_MAPS` —
    /// never the pointer map, so pointer localities stay valid).
    pub write_map: MapId,
    /// Where it writes it.
    pub write_at: Place,
    /// Chain as `else if` of the previous condition.
    pub is_else: bool,
}

/// A runtime-safe action spec: everything needed to build an executable
/// action through [`ActionBuilder`] — and to shrink/debug it, since the
/// spec (unlike a [`BuiltAction`]) is `Debug + Clone`.
#[derive(Debug, Clone)]
pub struct ActionSpec {
    /// The generator.
    pub generator: GeneratorIr,
    /// The condition chain (at least one).
    pub conds: Vec<CondSpec>,
}

/// Build the spec through the real builder, running the full static
/// verifier. `Err` means the verifier rejected it (a legitimate outcome
/// for random specs — e.g. an unmerged stale guard).
pub fn build_spec(spec: &ActionSpec) -> Result<BuiltAction, BuildError> {
    let mut b = ActionBuilder::new("random_runtime", spec.generator);
    let declare_resolution = |b: &mut ActionBuilder, p: &Place| {
        if let Place::MapAt(m, inner) = p {
            b.read_vertex(*m, (**inner).clone());
        }
    };
    for (i, c) in spec.conds.iter().enumerate() {
        declare_resolution(&mut b, &c.read_at);
        declare_resolution(&mut b, &c.write_at);
        let s = b.read_vertex(c.read_map, c.read_at.clone());
        let cb = if c.is_else && i > 0 {
            b.else_cond(&[s], move |e| e.u64(s) < u64::MAX)
        } else {
            b.cond(&[s], move |e| e.u64(s) < u64::MAX)
        };
        cb.assign(c.write_map, c.write_at.clone(), &[s], move |e, old| {
            Val::U(old.as_u64().max(e.u64(s)).wrapping_add(1))
        });
    }
    b.build()
}

/// Runtime-safe specs: generators the small test graph supports, places
/// legal for the generator (with at most one level of indirection
/// through the pointer map), reads over all five maps, writes over the
/// four value maps only.
pub fn arb_runtime_spec() -> impl Strategy<Value = ActionSpec> {
    let generators = prop::sample::select(vec![
        GeneratorIr::None,
        GeneratorIr::OutEdges,
        GeneratorIr::InEdges,
        GeneratorIr::Adj,
    ]);
    (
        generators,
        proptest::collection::vec(
            (
                0..=RUNTIME_POINTER_MAP, // read map
                0usize..16,              // read place pick
                0..RUNTIME_VALUE_MAPS,   // write map
                0usize..16,              // write place pick
                any::<bool>(),           // else flag
            ),
            1..4,
        ),
    )
        .prop_map(|(generator, conds)| {
            let places = legal_places(generator, &[RUNTIME_POINTER_MAP]);
            let conds = conds
                .into_iter()
                .map(|(read_map, rp, write_map, wp, is_else)| CondSpec {
                    read_map,
                    read_at: places[rp % places.len()].clone(),
                    write_map,
                    write_at: places[wp % places.len()].clone(),
                    is_else,
                })
                .collect();
            ActionSpec { generator, conds }
        })
}

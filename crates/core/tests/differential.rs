//! Differential testing: random monotone relax-style actions, generated
//! from a tiny spec, are executed (a) by a direct sequential fixed-point
//! evaluator derived from the same spec and (b) by the full distributed
//! engine under every configuration — all answers must agree exactly.
//!
//! Monotonicity (guarded-min over a non-negative increment) makes the
//! fixed point order-independent, so chaotic distributed execution is
//! comparable against the sequential loop.

use proptest::prelude::*;

use dgp_am::{Machine, MachineConfig, TerminationMode};
use dgp_core::builder::{ActionBuilder, BuiltAction};
use dgp_core::engine::{EngineConfig, PatternEngine, SyncMode, Val};
use dgp_core::ir::{GeneratorIr, Place};
use dgp_core::plan::PlanMode;
use dgp_core::strategies::fixed_point;
use dgp_graph::properties::AtomicVertexMap;
use dgp_graph::{DistGraph, Distribution, EdgeList};

/// A monotone relax action: over the chosen generator, lower the label of
/// the generated endpoint to `label[v] + addend` when that improves it.
#[derive(Debug, Clone, Copy)]
struct Spec {
    gen: SpecGen,
    addend: u64,
}

#[derive(Debug, Clone, Copy)]
enum SpecGen {
    OutEdges,
    Adj,
    InEdges,
}

impl Spec {
    fn build(&self, label: u32) -> BuiltAction {
        let (gen_ir, target) = match self.gen {
            SpecGen::OutEdges => (GeneratorIr::OutEdges, Place::GenTrg),
            SpecGen::InEdges => (GeneratorIr::InEdges, Place::GenSrc),
            SpecGen::Adj => (GeneratorIr::Adj, Place::GenVertex),
        };
        let addend = self.addend;
        let mut b = ActionBuilder::new("spec_relax", gen_ir);
        let l_t = b.read_vertex(label, target.clone());
        let l_v = b.read_vertex(label, Place::Input);
        b.cond(&[l_t, l_v], move |e| {
            e.u64(l_v) != u64::MAX && e.u64(l_t) > e.u64(l_v).saturating_add(addend)
        })
        .assign(label, target, &[l_v], move |e, _| {
            Val::U(e.u64(l_v) + addend)
        });
        b.build().expect("spec actions are valid")
    }

    /// Direct sequential fixed point over the edge list.
    fn sequential(&self, el: &EdgeList, source: u64) -> Vec<u64> {
        let n = el.num_vertices() as usize;
        let mut label = vec![u64::MAX; n];
        label[source as usize] = 0;
        loop {
            let mut changed = false;
            for &(u, v) in &el.edges {
                // The generator decides which endpoint relaxes which.
                let (from, to) = match self.gen {
                    SpecGen::OutEdges | SpecGen::Adj => (u as usize, v as usize),
                    SpecGen::InEdges => {
                        // in_edges at v generates (u, v); input vertex is v,
                        // target is src(e) = u: v relaxes u.
                        (v as usize, u as usize)
                    }
                };
                if label[from] != u64::MAX {
                    let cand = label[from] + self.addend;
                    if label[to] > cand {
                        label[to] = cand;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        label
    }
}

fn run_engine(
    spec: Spec,
    el: &EdgeList,
    source: u64,
    ranks: usize,
    cfg: EngineConfig,
    term: TerminationMode,
) -> Vec<u64> {
    let needs_bidir = matches!(spec.gen, SpecGen::InEdges);
    let graph = DistGraph::build(
        el,
        Distribution::cyclic(el.num_vertices(), ranks),
        needs_bidir,
    );
    let mut out = Machine::run(MachineConfig::new(ranks).termination(term), move |ctx| {
        let label = ctx.share(|| AtomicVertexMap::new(graph.distribution(), u64::MAX));
        let engine = PatternEngine::new(ctx, graph.clone(), cfg);
        let label_id = engine.register_vertex_map(&label);
        let action = engine.add_action(spec.build(label_id)).unwrap();
        let rank = ctx.rank();
        if graph.owner(source) == rank {
            label.set(rank, source, 0);
        }
        ctx.barrier();
        let seeds: Vec<_> = (graph.owner(source) == rank)
            .then_some(source)
            .into_iter()
            .collect();
        fixed_point(ctx, &engine, action, &seeds);
        (ctx.rank() == 0).then(|| label.snapshot())
    });
    out[0].take().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Distributed == sequential for every engine configuration.
    #[test]
    fn engine_matches_sequential_fixed_point(
        n in 2u64..40,
        edges in proptest::collection::vec((0u64..40, 0u64..40), 1..120),
        source_pick in 0u64..40,
        addend in 0u64..5,
        gen_pick in 0usize..3,
        ranks in 1usize..4,
    ) {
        let pairs: Vec<_> = edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let el = EdgeList::from_pairs(n, &pairs);
        let source = source_pick % n;
        let spec = Spec {
            gen: [SpecGen::OutEdges, SpecGen::Adj, SpecGen::InEdges][gen_pick],
            addend,
        };
        let want = spec.sequential(&el, source);

        for (cfg, term) in [
            (EngineConfig::default(), TerminationMode::SharedCounters),
            (
                EngineConfig { sync: SyncMode::LockMap, ..Default::default() },
                TerminationMode::SharedCounters,
            ),
            (
                EngineConfig { plan_mode: PlanMode::Faithful, ..Default::default() },
                TerminationMode::FourCounterWave,
            ),
            (
                EngineConfig { self_send: false, ..Default::default() },
                TerminationMode::SharedCounters,
            ),
        ] {
            let got = run_engine(spec, &el, source, ranks, cfg, term);
            prop_assert_eq!(
                &got, &want,
                "spec {:?} ranks {} cfg {:?} {:?}", spec, ranks, cfg, term
            );
        }
    }
}

//! Differential validation of the static verifier against the engine's
//! dynamic locality cross-validator.
//!
//! The property (the verifier's soundness contract): any pattern the
//! static verifier accepts executes without ever touching a property
//! value away from the locality the plan assigned it — checked by
//! running with [`EngineConfig::validate_locality`] on, which counts
//! owner-only violations instead of asserting, and demanding zero.
//!
//! The converse direction: seeded-broken variants of the same specs
//! (a mod retargeted to an undeclared pointer locality; a tampered
//! gather) are flagged *statically*, before any engine exists.

use proptest::prelude::*;

use dgp_am::{Machine, MachineConfig};
use dgp_core::engine::{EngineConfig, PatternEngine};
use dgp_core::ir::Place;
use dgp_core::plan::{compile, PlanMode};
use dgp_core::strategies::once;
use dgp_core::verify::{verify_ir, DiagCode};
use dgp_graph::properties::AtomicVertexMap;
use dgp_graph::{DistGraph, Distribution, EdgeList};

mod common;
use common::{arb_runtime_spec, build_spec, RUNTIME_VALUE_MAPS};

/// A small graph every runtime generator works on: a ring with chords,
/// stored bidirectionally (for `InEdges`/`Adj`).
fn test_graph(n: u64) -> (EdgeList, Distribution) {
    let mut el = EdgeList::new(n);
    for v in 0..n {
        el.push(v, (v + 1) % n);
        if v % 3 == 0 {
            el.push(v, (v + 2) % n);
        }
    }
    (el, Distribution::block(n, 2))
}

proptest! {
    // Each case spins up a full two-rank machine; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Statically-clean random patterns never trip the dynamic
    /// owner-only check, in either plan mode.
    #[test]
    fn verifier_clean_specs_run_without_locality_violations(
        spec in arb_runtime_spec(),
        faithful in any::<bool>(),
    ) {
        // The verifier may legitimately reject random specs (stale
        // guards, races); the property quantifies over the accepted ones.
        prop_assume!(build_spec(&spec).is_ok());

        let spec2 = spec.clone();
        let violations = Machine::run(MachineConfig::new(2), move |ctx| {
            let n = 8u64;
            let (el, dist) = test_graph(n);
            let graph = DistGraph::build(&el, dist, true);
            let cfg = EngineConfig {
                validate_locality: true,
                plan_mode: if faithful { PlanMode::Faithful } else { PlanMode::Optimized },
                ..Default::default()
            };
            let engine = PatternEngine::new(ctx, graph.clone(), cfg);
            for _ in 0..RUNTIME_VALUE_MAPS {
                let m = ctx.share(|| AtomicVertexMap::new(graph.distribution(), 0u64));
                engine.register_vertex_map(&m);
            }
            // The pointer map: every vertex points at its ring successor.
            let pnt = ctx.share(|| AtomicVertexMap::new(graph.distribution(), 0u64));
            engine.register_vertex_map(&pnt);
            for v in 0..n {
                if graph.owner(v) == ctx.rank() {
                    pnt.set(ctx.rank(), v, (v + 1) % n);
                }
            }
            ctx.barrier();

            let built = build_spec(&spec2).expect("spec built on the driver");
            let action = engine.add_action(built).expect("clean spec installs");
            let seeds: Vec<u64> = (0..n).filter(|&v| graph.owner(v) == ctx.rank()).collect();
            once(ctx, &engine, action, &seeds);
            engine.locality_violations()
        });
        for (rank, v) in violations.iter().enumerate() {
            prop_assert_eq!(
                *v, 0,
                "rank {} saw {} locality violations for {:?} (faithful={})",
                rank, v, spec, faithful
            );
        }
    }

    /// Seeded-broken variants are flagged statically: retargeting any
    /// modification to an undeclared pointer locality is a P006 error.
    #[test]
    fn broken_mod_target_is_flagged_statically(spec in arb_runtime_spec()) {
        prop_assume!(build_spec(&spec).is_ok());
        let built = build_spec(&spec).unwrap();
        let mut ir = built.ir.clone();
        ir.conditions[0].mods[0].at = Place::map_at(9, Place::Input);
        let report = verify_ir(&ir);
        prop_assert!(report.has_errors(), "mutated {:?} not flagged:\n{}", spec, report);
        prop_assert!(
            !report.with_code(DiagCode::P006).is_empty(),
            "expected P006 for {:?}:\n{}", spec, report
        );
    }

    /// Seeded-broken plans are flagged statically: stripping every
    /// gather (and every fresh local read) from a compiled plan starves
    /// each condition's reads, and the plan checker reports D002.
    #[test]
    fn broken_plan_is_flagged_statically(spec in arb_runtime_spec()) {
        prop_assume!(build_spec(&spec).is_ok());
        let built = build_spec(&spec).unwrap();
        let plan = compile(&built.ir, PlanMode::Optimized).expect("clean spec compiles");
        let mut tampered = plan.clone();
        for step in &mut tampered.steps {
            match step {
                dgp_core::plan::ExecStep::Gather { slots, .. } => slots.clear(),
                dgp_core::plan::ExecStep::Eval { local_slots, .. }
                | dgp_core::plan::ExecStep::EvalModify { local_slots, .. }
                | dgp_core::plan::ExecStep::ModifyGroup { local_slots, .. } => {
                    local_slots.clear()
                }
                _ => {}
            }
        }
        let diags = dgp_core::verify::verify_action(&built.ir, &tampered);
        prop_assert!(
            diags.iter().any(|d| d.code == DiagCode::D002),
            "tampered plan for {:?} not flagged: {:?}", spec, diags
        );
    }
}

//! Replay serialization: a [`ScenarioSpec`] as a flat `[replay]`
//! key=value block.
//!
//! The format is deliberately primitive — one key per line, repeated
//! keys for lists, `#` comments — so a failing schedule survives being
//! pasted into an issue, attached to a post-mortem, or committed as a
//! regression fixture, and replays with one command
//! (`experiments --sim-replay <file>`).

use dgp_am::{PartitionMode, PartitionSpec, SimAt, StallSpec, StragglerSpec};

use crate::scenario::{GraphKind, ScenarioSpec, Workload};

fn at_str(a: SimAt) -> String {
    match a {
        SimAt::Time(t) => format!("time:{t}"),
        SimAt::Epoch(e) => format!("epoch:{e}"),
    }
}

fn parse_at(s: &str) -> Result<SimAt, String> {
    let (kind, val) = s
        .split_once(':')
        .ok_or_else(|| format!("bad SimAt {s:?} (want time:<ns> or epoch:<n>)"))?;
    let n: u64 = val
        .parse()
        .map_err(|_| format!("bad SimAt value {val:?}"))?;
    match kind {
        "time" => Ok(SimAt::Time(n)),
        "epoch" => Ok(SimAt::Epoch(n)),
        _ => Err(format!("bad SimAt kind {kind:?}")),
    }
}

/// Serialize a scenario as a replayable `[replay]` block.
pub fn to_replay(spec: &ScenarioSpec) -> String {
    let mut out = String::from("[replay]\n");
    let mut kv = |k: &str, v: String| out.push_str(&format!("{k} = {v}\n"));
    kv(
        "workload",
        match spec.workload {
            Workload::Sssp { source } => format!("sssp:{source}"),
            Workload::Cc => "cc".into(),
            Workload::PageRank { iters } => format!("pagerank:{iters}"),
        },
    );
    kv(
        "graph",
        match spec.graph {
            GraphKind::Rmat { scale, edge_factor } => format!("rmat:{scale}:{edge_factor}"),
            GraphKind::ErdosRenyi { n, m } => format!("erdos:{n}:{m}"),
            GraphKind::Blobs { k, size } => format!("blobs:{k}:{size}"),
        },
    );
    kv("graph_seed", spec.graph_seed.to_string());
    kv("ranks", spec.ranks.to_string());
    kv("coalescing", spec.coalescing.to_string());
    kv("wave", spec.wave.to_string());
    kv("faults", spec.faults.to_string());
    kv("seed", spec.seed.to_string());
    kv("latency_ns", spec.latency_ns.to_string());
    kv("per_msg_ns", spec.per_msg_ns.to_string());
    kv("jitter_ns", spec.jitter_ns.to_string());
    kv("every_delivery", spec.every_delivery.to_string());
    for &(f, t, lat) in &spec.links {
        kv("link", format!("{f}:{t}:{lat}"));
    }
    for p in &spec.partitions {
        let mode = match p.mode {
            PartitionMode::Hold => "hold",
            PartitionMode::Drop => "drop",
        };
        let cut = p
            .cut
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(",");
        kv(
            "partition",
            format!("{mode}:{}:{}:{cut}", at_str(p.from), at_str(p.until)),
        );
    }
    for s in &spec.stragglers {
        kv("straggler", format!("{}:{}", s.rank, s.factor));
    }
    for s in &spec.stalls {
        kv("stall", format!("{}:{}:{}", s.rank, s.at_ns, s.duration_ns));
    }
    out
}

fn parse_u64(k: &str, v: &str) -> Result<u64, String> {
    v.parse().map_err(|_| format!("{k}: bad integer {v:?}"))
}

fn parse_usize(k: &str, v: &str) -> Result<usize, String> {
    v.parse().map_err(|_| format!("{k}: bad integer {v:?}"))
}

fn parse_bool(k: &str, v: &str) -> Result<bool, String> {
    v.parse().map_err(|_| format!("{k}: bad bool {v:?}"))
}

/// Parse a `[replay]` block back into a scenario. Tolerates blank lines,
/// `#` comments, and text before the `[replay]` header (so a whole
/// post-mortem file containing an embedded block parses directly).
pub fn from_replay(text: &str) -> Result<ScenarioSpec, String> {
    let mut spec = ScenarioSpec::baseline(0);
    let mut in_block = false;
    let mut saw_block = false;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            in_block = line == "[replay]";
            saw_block |= in_block;
            continue;
        }
        if !in_block {
            continue;
        }
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| format!("bad line {line:?} (want key = value)"))?;
        let (k, v) = (k.trim(), v.trim());
        match k {
            "workload" => {
                spec.workload = match v.split_once(':') {
                    Some(("sssp", s)) => Workload::Sssp {
                        source: parse_u64(k, s)?,
                    },
                    Some(("pagerank", i)) => Workload::PageRank {
                        iters: parse_usize(k, i)?,
                    },
                    None if v == "cc" => Workload::Cc,
                    _ => return Err(format!("workload: unknown {v:?}")),
                };
            }
            "graph" => {
                let parts: Vec<&str> = v.split(':').collect();
                spec.graph = match parts.as_slice() {
                    ["rmat", s, ef] => GraphKind::Rmat {
                        scale: parse_u64(k, s)? as u32,
                        edge_factor: parse_usize(k, ef)?,
                    },
                    ["erdos", n, m] => GraphKind::ErdosRenyi {
                        n: parse_u64(k, n)?,
                        m: parse_usize(k, m)?,
                    },
                    ["blobs", kk, size] => GraphKind::Blobs {
                        k: parse_u64(k, kk)?,
                        size: parse_u64(k, size)?,
                    },
                    _ => return Err(format!("graph: unknown {v:?}")),
                };
            }
            "graph_seed" => spec.graph_seed = parse_u64(k, v)?,
            "ranks" => spec.ranks = parse_usize(k, v)?,
            "coalescing" => spec.coalescing = parse_usize(k, v)?,
            "wave" => spec.wave = parse_bool(k, v)?,
            "faults" => spec.faults = parse_bool(k, v)?,
            "seed" => spec.seed = parse_u64(k, v)?,
            "latency_ns" => spec.latency_ns = parse_u64(k, v)?,
            "per_msg_ns" => spec.per_msg_ns = parse_u64(k, v)?,
            "jitter_ns" => spec.jitter_ns = parse_u64(k, v)?,
            "every_delivery" => spec.every_delivery = parse_bool(k, v)?,
            "link" => {
                let parts: Vec<&str> = v.split(':').collect();
                match parts.as_slice() {
                    [f, t, lat] => spec.links.push((
                        parse_usize(k, f)?,
                        parse_usize(k, t)?,
                        parse_u64(k, lat)?,
                    )),
                    _ => return Err(format!("link: want from:to:latency, got {v:?}")),
                }
            }
            "partition" => {
                // mode : from_kind : from_val : until_kind : until_val : cut
                let parts: Vec<&str> = v.split(':').collect();
                if parts.len() != 6 {
                    return Err(format!(
                        "partition: want mode:from:until:cut (6 fields), got {v:?}"
                    ));
                }
                let mode = match parts[0] {
                    "hold" => PartitionMode::Hold,
                    "drop" => PartitionMode::Drop,
                    m => return Err(format!("partition: unknown mode {m:?}")),
                };
                let from = parse_at(&format!("{}:{}", parts[1], parts[2]))?;
                let until = parse_at(&format!("{}:{}", parts[3], parts[4]))?;
                let cut = parts[5]
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| parse_usize(k, s))
                    .collect::<Result<Vec<_>, _>>()?;
                spec.partitions.push(PartitionSpec {
                    cut,
                    from,
                    until,
                    mode,
                });
            }
            "straggler" => {
                let parts: Vec<&str> = v.split(':').collect();
                match parts.as_slice() {
                    [r, f] => spec.stragglers.push(StragglerSpec {
                        rank: parse_usize(k, r)?,
                        factor: parse_u64(k, f)?,
                    }),
                    _ => return Err(format!("straggler: want rank:factor, got {v:?}")),
                }
            }
            "stall" => {
                let parts: Vec<&str> = v.split(':').collect();
                match parts.as_slice() {
                    [r, at, dur] => spec.stalls.push(StallSpec {
                        rank: parse_usize(k, r)?,
                        at_ns: parse_u64(k, at)?,
                        duration_ns: parse_u64(k, dur)?,
                    }),
                    _ => return Err(format!("stall: want rank:at:duration, got {v:?}")),
                }
            }
            _ => return Err(format!("unknown key {k:?}")),
        }
    }
    if !saw_block {
        return Err("no [replay] block found".into());
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::partition;

    fn busy_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::baseline(99);
        spec.workload = Workload::PageRank { iters: 7 };
        spec.graph = GraphKind::Blobs { k: 3, size: 20 };
        spec.wave = true;
        spec.faults = true;
        spec.jitter_ns = 4_242;
        spec.every_delivery = true;
        spec.links.push((1, 2, 55_000));
        spec.partitions.push(partition(
            &[0, 2],
            SimAt::Epoch(2),
            SimAt::Time(9_000_000),
            PartitionMode::Drop,
        ));
        spec.stragglers.push(StragglerSpec {
            rank: 3,
            factor: 16,
        });
        spec.stalls.push(StallSpec {
            rank: 1,
            at_ns: 2_000,
            duration_ns: 1_000_000,
        });
        spec
    }

    #[test]
    fn round_trips_exactly() {
        let spec = busy_spec();
        let text = to_replay(&spec);
        let back = from_replay(&text).expect("parse");
        assert_eq!(back, spec);
    }

    #[test]
    fn round_trips_the_baseline() {
        let spec = ScenarioSpec::baseline(5);
        assert_eq!(from_replay(&to_replay(&spec)).unwrap(), spec);
    }

    #[test]
    fn tolerates_comments_and_surrounding_text() {
        let text = format!(
            "post-mortem narrative line\n\n{}# trailing comment\n",
            to_replay(&busy_spec())
        );
        assert_eq!(from_replay(&text).unwrap(), busy_spec());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_replay("no block here").is_err());
        assert!(from_replay("[replay]\nworkload = tsp:0\n").is_err());
        assert!(from_replay("[replay]\nranks pancake\n").is_err());
        assert!(from_replay("[replay]\npartition = hold:1:2\n").is_err());
    }
}

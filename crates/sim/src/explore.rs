//! Schedule exploration: sweep seeds × adversarial policies over a base
//! scenario, shrink every failure to a minimal repro.

use dgp_am::{PartitionMode, SimAt};

use crate::scenario::{partition, run_scenario, ScenarioSpec};
use crate::{shrink, to_replay};

/// An adversarial scheduling policy: a deterministic perturbation of a
/// base scenario, parameterized by the sweep seed so different seeds
/// probe different placements of the same hazard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The unperturbed base scenario (control group).
    Baseline,
    /// One rank's links are two orders of magnitude slower.
    DelayOneRank,
    /// A partition forms at the end of an early epoch and heals later
    /// (Hold mode: traffic parks and floods in at the heal).
    PartitionAtEpoch,
    /// A partition that *drops* traffic mid-run, forcing the reliability
    /// layer to recover every packet (requires `faults`; the policy
    /// enables them).
    DropPartition,
    /// Sharply asymmetric link latencies: rank-to-rank costs differ by
    /// direction, maximizing reordering against FIFO intuition.
    AsymmetricLinks,
    /// Maximum jitter relative to base latency: deliveries reorder
    /// heavily even on symmetric links.
    ReorderHeavy,
    /// One rank stalls completely (crash) partway through and resumes
    /// (recover) later — fail-stutter.
    CrashRecover,
}

/// All policies, in sweep order.
pub const ALL_POLICIES: [Policy; 7] = [
    Policy::Baseline,
    Policy::DelayOneRank,
    Policy::PartitionAtEpoch,
    Policy::DropPartition,
    Policy::AsymmetricLinks,
    Policy::ReorderHeavy,
    Policy::CrashRecover,
];

impl Policy {
    /// Apply this policy to `base`, seeding placement decisions from
    /// `seed` (which also becomes the schedule seed).
    pub fn apply(self, base: &ScenarioSpec, seed: u64) -> ScenarioSpec {
        let mut spec = base.clone();
        spec.seed = seed;
        let nr = spec.ranks;
        let victim = (seed as usize) % nr.max(1);
        match self {
            Policy::Baseline => {}
            Policy::DelayOneRank => {
                spec.stragglers.push(dgp_am::StragglerSpec {
                    rank: victim,
                    factor: 100,
                });
            }
            Policy::PartitionAtEpoch => {
                let epoch = 1 + seed % 2;
                spec.partitions.push(partition(
                    &[victim],
                    SimAt::Epoch(epoch),
                    SimAt::Time(spec.latency_ns.saturating_mul(5_000)),
                    PartitionMode::Hold,
                ));
            }
            Policy::DropPartition => {
                spec.faults = true;
                spec.partitions.push(partition(
                    &[victim],
                    SimAt::Time(0),
                    SimAt::Time(spec.latency_ns.saturating_mul(500)),
                    PartitionMode::Drop,
                ));
            }
            Policy::AsymmetricLinks => {
                for to in 0..nr {
                    if to != victim {
                        spec.links.push((victim, to, spec.latency_ns * 50));
                        spec.links.push((to, victim, spec.latency_ns / 2 + 1));
                    }
                }
            }
            Policy::ReorderHeavy => {
                spec.jitter_ns = spec.latency_ns.saturating_mul(20);
            }
            Policy::CrashRecover => {
                spec.stalls.push(dgp_am::StallSpec {
                    rank: victim,
                    at_ns: spec.latency_ns * 2,
                    duration_ns: spec.latency_ns.saturating_mul(2_000),
                });
            }
        }
        spec
    }

    /// Stable lowercase name (used in reports and CI artifact names).
    pub fn name(self) -> &'static str {
        match self {
            Policy::Baseline => "baseline",
            Policy::DelayOneRank => "delay-one-rank",
            Policy::PartitionAtEpoch => "partition-at-epoch",
            Policy::DropPartition => "drop-partition",
            Policy::AsymmetricLinks => "asymmetric-links",
            Policy::ReorderHeavy => "reorder-heavy",
            Policy::CrashRecover => "crash-recover",
        }
    }
}

/// One explored case: the policy/seed cell, what happened, and — for
/// failures — the shrunk minimal repro and its replay block.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The policy applied.
    pub policy: Policy,
    /// The schedule seed swept.
    pub seed: u64,
    /// Failure rendering, `None` on success.
    pub error: Option<String>,
    /// Result digest (differential signal across cells of one policy).
    pub result_digest: u64,
    /// Virtual completion time of the run.
    pub virtual_time_ns: u64,
    /// For failures: the shrunk scenario that still fails.
    pub minimal: Option<ScenarioSpec>,
    /// For failures: the `[replay]` block of the shrunk scenario.
    pub replay: Option<String>,
}

/// Everything [`explore`] learned.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// One entry per (policy, seed) cell, in sweep order.
    pub cases: Vec<CaseOutcome>,
}

impl ExploreReport {
    /// The failing cases only.
    pub fn failures(&self) -> impl Iterator<Item = &CaseOutcome> {
        self.cases.iter().filter(|c| c.error.is_some())
    }

    /// Render a compact sweep table (one line per cell).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.cases {
            let status = match &c.error {
                None => format!(
                    "ok digest={:#018x} vt={}ns",
                    c.result_digest, c.virtual_time_ns
                ),
                Some(e) => format!("FAIL {e}"),
            };
            out.push_str(&format!(
                "{:<20} seed={:<6} {}\n",
                c.policy.name(),
                c.seed,
                status
            ));
        }
        out
    }
}

/// Sweep `seeds` × `policies` over `base`. Every failing cell is shrunk
/// to a minimal still-failing scenario and serialized for replay.
pub fn explore(base: &ScenarioSpec, seeds: &[u64], policies: &[Policy]) -> ExploreReport {
    let mut report = ExploreReport::default();
    for &policy in policies {
        for &seed in seeds {
            let spec = policy.apply(base, seed);
            let out = run_scenario(&spec);
            let (minimal, replay) = match &out.error {
                Some(_) => {
                    let min = shrink(&spec, |s| run_scenario(s).error.is_some());
                    let rep = to_replay(&min);
                    (Some(min), Some(rep))
                }
                None => (None, None),
            };
            report.cases.push(CaseOutcome {
                policy,
                seed,
                error: out.error,
                result_digest: out.result_digest,
                virtual_time_ns: out.report.virtual_time_ns,
                minimal,
                replay,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_have_distinct_names() {
        let mut names: Vec<_> = ALL_POLICIES.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_POLICIES.len());
    }

    #[test]
    fn policies_perturb_the_baseline() {
        let base = ScenarioSpec::baseline(1);
        for p in ALL_POLICIES.iter().skip(1) {
            let spec = p.apply(&base, 3);
            assert_ne!(&spec, &{
                let mut b = base.clone();
                b.seed = 3;
                b
            });
        }
    }

    #[test]
    fn small_sweep_is_all_green_and_differential() {
        let base = ScenarioSpec::baseline(1);
        let report = explore(
            &base,
            &[1, 2],
            &[Policy::Baseline, Policy::ReorderHeavy, Policy::DelayOneRank],
        );
        assert_eq!(report.cases.len(), 6);
        assert_eq!(report.failures().count(), 0, "{}", report.render());
        // Differential: every cell computed the same result.
        let d0 = report.cases[0].result_digest;
        assert!(report.cases.iter().all(|c| c.result_digest == d0));
    }
}

#![warn(missing_docs)]

//! # dgp-sim — schedule exploration over the deterministic simulator
//!
//! The runtime's simulator ([`dgp_am::Machine::run_sim`]) executes the
//! unmodified handler/engine stack over modeled links under one seeded
//! event queue, so every run — thousands of ranks included — is exactly
//! reproducible. This crate turns that determinism into a testing tool:
//!
//! * **Scenarios** ([`scenario`]): one flat, serializable description of
//!   a complete simulated run — workload, graph, machine shape, and the
//!   full network plan (latency, jitter, links, partitions, stragglers,
//!   stalls). [`run_scenario`] executes it with the workload's mid-run
//!   invariant checker installed and reports a pass/fail outcome plus
//!   the run's [`dgp_am::SimReport`].
//! * **Exploration** ([`explore`]): sweep seeds × adversarial policies
//!   (delay-one-rank, partition-at-epoch, asymmetric links,
//!   reorder-heavy, crash-recover) over a base scenario, collecting
//!   every failure.
//! * **Shrinking** ([`shrink`]): greedily reduce a failing scenario —
//!   dropping plan elements, zeroing jitter, shrinking the machine —
//!   to a minimal spec that still fails.
//! * **Replay** ([`dump`]): serialize any scenario (shrunk or not) to a
//!   flat `[replay]` key=value block and parse it back, so one failing
//!   schedule travels as a few lines of text and replays with one
//!   command (`experiments --sim-replay <file>`).

pub mod dump;
pub mod explore;
pub mod scenario;
pub mod shrink;

pub use dump::{from_replay, to_replay};
pub use explore::{explore, CaseOutcome, ExploreReport, Policy, ALL_POLICIES};
pub use scenario::{run_scenario, GraphKind, Outcome, ScenarioSpec, Workload};
pub use shrink::shrink;

//! Self-contained simulated-run descriptions and their executor.

use dgp_algorithms::api::{run_cc_sim, run_pagerank_sim, run_sssp_sim};
use dgp_algorithms::SsspStrategy;
use dgp_am::{
    FaultPlan, InvariantCadence, MachineConfig, PartitionSpec, SimAt, SimPlan, SimReport,
    StallSpec, StragglerSpec, TerminationMode,
};
use dgp_graph::{generators, EdgeList};

/// Which algorithm the scenario runs (each installs its own mid-run
/// invariant checker; see `dgp_algorithms::api::run_*_sim`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Fixed-point SSSP from `source`; checked against Dijkstra mid-run.
    Sssp {
        /// Source vertex.
        source: u64,
    },
    /// Connected components; labels checked against union-find mid-run.
    Cc,
    /// PageRank; values checked finite and non-negative mid-run.
    PageRank {
        /// Power-iteration count.
        iters: usize,
    },
}

/// Which graph the scenario runs on (generated, so a few integers fully
/// describe it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphKind {
    /// Graph500 R-MAT: `2^scale` vertices, `scale << edge_factor` edges.
    Rmat {
        /// log2 of the vertex count.
        scale: u32,
        /// Edges per vertex.
        edge_factor: usize,
    },
    /// Uniform random graph with `n` vertices and `m` edges.
    ErdosRenyi {
        /// Vertex count.
        n: u64,
        /// Edge count.
        m: usize,
    },
    /// `k` dense blobs of `size` vertices each (known components).
    Blobs {
        /// Number of components.
        k: u64,
        /// Vertices per component.
        size: u64,
    },
}

/// One complete, flat description of a simulated run: everything
/// [`run_scenario`] needs, and everything [`crate::to_replay`] writes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The algorithm under test.
    pub workload: Workload,
    /// The generated input graph.
    pub graph: GraphKind,
    /// Generator seed (graph structure and weights).
    pub graph_seed: u64,
    /// Simulated rank count.
    pub ranks: usize,
    /// Coalescing buffer capacity ([`MachineConfig::coalescing`]).
    pub coalescing: usize,
    /// Use [`TerminationMode::FourCounterWave`] instead of counters.
    pub wave: bool,
    /// Enable the seeded fault plan (reliability layer under test).
    pub faults: bool,
    /// Schedule seed ([`SimPlan::new`]).
    pub seed: u64,
    /// Default link latency, nanoseconds.
    pub latency_ns: u64,
    /// Per-message serialization cost, nanoseconds.
    pub per_msg_ns: u64,
    /// Deterministic per-delivery jitter bound, nanoseconds.
    pub jitter_ns: u64,
    /// Check invariants at every delivery instead of every epoch.
    pub every_delivery: bool,
    /// Per-link latency overrides `(from, to, latency_ns)`.
    pub links: Vec<(usize, usize, u64)>,
    /// Network partitions.
    pub partitions: Vec<PartitionSpec>,
    /// Slow ranks.
    pub stragglers: Vec<StragglerSpec>,
    /// Crash-recover (fail-stutter) windows.
    pub stalls: Vec<StallSpec>,
}

impl ScenarioSpec {
    /// A small, healthy baseline: SSSP over an R-MAT graph, 4 ranks,
    /// plain links. Policies and tests perturb from here.
    pub fn baseline(seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            workload: Workload::Sssp { source: 0 },
            graph: GraphKind::Rmat {
                scale: 6,
                edge_factor: 6,
            },
            graph_seed: 21,
            ranks: 4,
            coalescing: 4,
            wave: false,
            faults: false,
            seed,
            latency_ns: 1_000,
            per_msg_ns: 10,
            jitter_ns: 0,
            every_delivery: false,
            links: Vec::new(),
            partitions: Vec::new(),
            stragglers: Vec::new(),
            stalls: Vec::new(),
        }
    }

    /// Build the generated edge list (weighted for SSSP).
    pub fn edge_list(&self) -> EdgeList {
        let mut el = match self.graph {
            GraphKind::Rmat { scale, edge_factor } => generators::rmat(
                scale,
                edge_factor,
                generators::RmatParams::GRAPH500,
                self.graph_seed,
            ),
            GraphKind::ErdosRenyi { n, m } => generators::erdos_renyi(n, m, self.graph_seed),
            GraphKind::Blobs { k, size } => {
                generators::component_blobs(k, size, 2, self.graph_seed)
            }
        };
        if matches!(self.workload, Workload::Sssp { .. }) {
            el.randomize_weights(0.5, 3.0, self.graph_seed ^ 0xA5A5);
        }
        el
    }

    /// The machine configuration this scenario describes.
    pub fn machine_config(&self) -> MachineConfig {
        let mut cfg = MachineConfig::new(self.ranks).coalescing(self.coalescing);
        if self.wave {
            cfg = cfg.termination(TerminationMode::FourCounterWave);
        }
        if self.faults {
            cfg = cfg.faults(FaultPlan::new(self.seed ^ 0xFA17));
        }
        cfg
    }

    /// The simulator plan this scenario describes.
    pub fn sim_plan(&self) -> SimPlan {
        let mut plan = SimPlan::new(self.seed)
            .latency(self.latency_ns)
            .per_msg(self.per_msg_ns)
            .jitter(self.jitter_ns);
        if self.every_delivery {
            plan = plan.invariant_cadence(InvariantCadence::EveryDelivery);
        }
        for &(from, to, lat) in &self.links {
            plan = plan.link(from, to, lat);
        }
        for p in &self.partitions {
            plan = plan.partition(&p.cut, p.from, p.until, p.mode);
        }
        for s in &self.stragglers {
            plan = plan.straggler(s.rank, s.factor);
        }
        for s in &self.stalls {
            plan = plan.stall(s.rank, s.at_ns, s.duration_ns);
        }
        plan
    }
}

/// What happened when a scenario ran.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// `None` on success; the failure rendering otherwise (the
    /// [`dgp_am::MachineError`] Display, invariant details included).
    pub error: Option<String>,
    /// The simulator's run report (frozen at the failure point on error).
    pub report: SimReport,
    /// FNV digest of the result vector's bit patterns (0 on failure) —
    /// what differential assertions compare across schedules.
    pub result_digest: u64,
}

impl Outcome {
    /// Did the run complete with all invariants holding?
    pub fn ok(&self) -> bool {
        self.error.is_none()
    }
}

fn fnv<I: IntoIterator<Item = u64>>(xs: I) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in xs {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Execute a scenario: generate the graph, build machine + plan, run the
/// workload under the simulator with its invariant checker installed.
/// Infallible at this layer — failures are data ([`Outcome::error`]),
/// which is what exploration and shrinking consume.
pub fn run_scenario(spec: &ScenarioSpec) -> Outcome {
    let el = spec.edge_list();
    let cfg = spec.machine_config();
    let plan = spec.sim_plan();
    match spec.workload {
        Workload::Sssp { source } => {
            match run_sssp_sim(&el, cfg, plan, source, SsspStrategy::FixedPoint) {
                Ok((dist, report)) => Outcome {
                    error: None,
                    report,
                    result_digest: fnv(dist.iter().map(|d| d.to_bits())),
                },
                Err(e) => Outcome {
                    error: Some(e.error.to_string()),
                    report: e.report,
                    result_digest: 0,
                },
            }
        }
        Workload::Cc => match run_cc_sim(&el, cfg, plan) {
            Ok((labels, report)) => Outcome {
                error: None,
                report,
                result_digest: fnv(labels.iter().copied()),
            },
            Err(e) => Outcome {
                error: Some(e.error.to_string()),
                report: e.report,
                result_digest: 0,
            },
        },
        Workload::PageRank { iters } => match run_pagerank_sim(&el, cfg, plan, 0.85, iters) {
            Ok((ranks, report)) => Outcome {
                error: None,
                report,
                result_digest: fnv(ranks.iter().map(|r| r.to_bits())),
            },
            Err(e) => Outcome {
                error: Some(e.error.to_string()),
                report: e.report,
                result_digest: 0,
            },
        },
    }
}

/// Re-exported so scenario construction sites can name plan atoms without
/// importing `dgp_am` separately.
pub use dgp_am::PartitionMode;

/// Convenience constructor for a partition spec (the `dgp_am` type's
/// fields are public but verbose to spell).
pub fn partition(cut: &[usize], from: SimAt, until: SimAt, mode: PartitionMode) -> PartitionSpec {
    PartitionSpec {
        cut: cut.to_vec(),
        from,
        until,
        mode,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_runs_clean() {
        let out = run_scenario(&ScenarioSpec::baseline(1));
        assert!(out.ok(), "{:?}", out.error);
        assert!(out.report.deliveries > 0);
        assert_ne!(out.result_digest, 0);
    }

    #[test]
    fn same_spec_same_outcome() {
        let spec = ScenarioSpec::baseline(7);
        let a = run_scenario(&spec);
        let b = run_scenario(&spec);
        assert_eq!(a.result_digest, b.result_digest);
        assert_eq!(a.report.flight_digest, b.report.flight_digest);
        assert_eq!(a.report.virtual_time_ns, b.report.virtual_time_ns);
    }

    #[test]
    fn schedule_seed_changes_timeline_not_results() {
        let mut spec = ScenarioSpec::baseline(1);
        spec.jitter_ns = 5_000;
        let a = run_scenario(&spec);
        spec.seed = 2;
        let b = run_scenario(&spec);
        assert_eq!(
            a.result_digest, b.result_digest,
            "results are schedule-free"
        );
        assert_ne!(
            a.report.flight_digest, b.report.flight_digest,
            "schedules differ"
        );
    }
}

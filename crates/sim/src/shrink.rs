//! Greedy scenario shrinking: reduce a failing [`ScenarioSpec`] to a
//! minimal spec that still fails the same predicate.
//!
//! The vendored proptest stand-in deliberately has no shrinking, so this
//! is the repo's real shrinker. Scenarios are flat value structs, which
//! makes greedy delta-debugging natural: try removing one plan element
//! (a partition, a straggler, a stall, a link override) or simplifying
//! one scalar (zero the jitter, halve the latency, halve the ranks,
//! shrink the graph), keep the edit iff the scenario still fails, and
//! iterate to a fixed point. Every candidate is a full deterministic
//! re-run, so the result is trustworthy: the returned spec *does* fail.

use crate::scenario::ScenarioSpec;

/// Hard cap on candidate runs, so shrinking a pathological scenario
/// stays bounded. 200 runs of small scenarios is well under a second.
const RUN_BUDGET: usize = 200;

/// Candidate edits, ordered most-aggressive-first: structural removals
/// before scalar simplifications, so one pass deletes whole plan
/// elements before fiddling with magnitudes.
fn candidates(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();
    for i in 0..spec.partitions.len() {
        let mut s = spec.clone();
        s.partitions.remove(i);
        out.push(s);
    }
    for i in 0..spec.stragglers.len() {
        let mut s = spec.clone();
        s.stragglers.remove(i);
        out.push(s);
    }
    for i in 0..spec.stalls.len() {
        let mut s = spec.clone();
        s.stalls.remove(i);
        out.push(s);
    }
    // Links shrink in halves first (removing 1 of 2·(n−1) asymmetric
    // overrides rarely changes anything; removing half of them does).
    if spec.links.len() > 1 {
        let mid = spec.links.len() / 2;
        let mut lo = spec.clone();
        lo.links.truncate(mid);
        out.push(lo);
        let mut hi = spec.clone();
        hi.links.drain(..mid);
        out.push(hi);
    }
    for i in 0..spec.links.len() {
        let mut s = spec.clone();
        s.links.remove(i);
        out.push(s);
    }
    if spec.faults {
        let mut s = spec.clone();
        s.faults = false;
        out.push(s);
    }
    if spec.wave {
        let mut s = spec.clone();
        s.wave = false;
        out.push(s);
    }
    if spec.every_delivery {
        let mut s = spec.clone();
        s.every_delivery = false;
        out.push(s);
    }
    if spec.jitter_ns > 0 {
        let mut s = spec.clone();
        s.jitter_ns = 0;
        out.push(s);
    }
    if spec.ranks > 2 {
        let mut s = spec.clone();
        s.ranks /= 2;
        // Plan elements may reference ranks that no longer exist; drop
        // those rather than producing an invalid candidate.
        s.partitions.retain(|p| p.cut.iter().all(|&r| r < s.ranks));
        s.stragglers.retain(|g| g.rank < s.ranks);
        s.stalls.retain(|g| g.rank < s.ranks);
        s.links.retain(|&(f, t, _)| f < s.ranks && t < s.ranks);
        out.push(s);
    }
    if spec.coalescing > 1 {
        let mut s = spec.clone();
        s.coalescing /= 2;
        out.push(s);
    }
    if spec.latency_ns > 1 {
        let mut s = spec.clone();
        s.latency_ns /= 2;
        out.push(s);
    }
    if spec.per_msg_ns > 0 {
        let mut s = spec.clone();
        s.per_msg_ns /= 2;
        out.push(s);
    }
    if let crate::scenario::GraphKind::Rmat { scale, edge_factor } = spec.graph {
        if scale > 3 {
            let mut s = spec.clone();
            s.graph = crate::scenario::GraphKind::Rmat {
                scale: scale - 1,
                edge_factor,
            };
            out.push(s);
        }
    }
    out
}

/// Shrink `spec` against `fails` (true ⇒ the scenario still exhibits the
/// failure). Greedy first-improvement descent with restart-on-success,
/// bounded by a fixed run budget; returns the smallest still-failing
/// spec found. `spec` itself is assumed failing (if it isn't, it is
/// returned unchanged — the predicate is never trusted blindly, so the
/// caller always gets a spec for which `fails` returned true, or the
/// original).
pub fn shrink(spec: &ScenarioSpec, fails: impl Fn(&ScenarioSpec) -> bool) -> ScenarioSpec {
    let mut best = spec.clone();
    let mut runs = 0;
    'outer: loop {
        for cand in candidates(&best) {
            if runs >= RUN_BUDGET {
                break 'outer;
            }
            runs += 1;
            if fails(&cand) {
                best = cand;
                continue 'outer; // re-derive candidates from the smaller spec
            }
        }
        break; // full pass with no accepted edit: fixed point
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{partition, GraphKind, PartitionMode, ScenarioSpec};
    use dgp_am::{SimAt, StragglerSpec};

    /// A synthetic predicate: "fails iff a straggler on rank 1 exists".
    /// The shrinker must strip everything else.
    #[test]
    fn strips_irrelevant_plan_elements() {
        let mut spec = ScenarioSpec::baseline(5);
        spec.jitter_ns = 9_000;
        spec.links.push((0, 1, 50));
        spec.links.push((1, 0, 77_000));
        spec.partitions.push(partition(
            &[2],
            SimAt::Epoch(1),
            SimAt::Time(5_000_000),
            PartitionMode::Hold,
        ));
        spec.stragglers.push(StragglerSpec {
            rank: 1,
            factor: 64,
        });
        spec.stragglers.push(StragglerSpec { rank: 3, factor: 2 });

        let fails = |s: &ScenarioSpec| s.stragglers.iter().any(|g| g.rank == 1 && g.factor > 10);
        let min = shrink(&spec, fails);
        assert!(fails(&min));
        assert!(min.partitions.is_empty());
        assert!(min.links.is_empty());
        assert_eq!(min.jitter_ns, 0);
        assert_eq!(min.stragglers.len(), 1);
        assert_eq!(min.stragglers[0].rank, 1);
        assert_eq!(min.ranks, 2, "rank count halved to the floor");
    }

    /// A never-failing predicate returns the input unchanged.
    #[test]
    fn non_failing_spec_is_returned_unchanged() {
        let spec = ScenarioSpec::baseline(1);
        let min = shrink(&spec, |_| false);
        assert_eq!(min, spec);
    }

    /// Scalars simplify: jitter zeroes, graph scale descends to 3.
    #[test]
    fn scalars_reach_their_floors() {
        let mut spec = ScenarioSpec::baseline(1);
        spec.jitter_ns = 12_345;
        spec.every_delivery = true;
        spec.wave = true;
        let min = shrink(&spec, |_| true);
        assert_eq!(min.jitter_ns, 0);
        assert!(!min.every_delivery);
        assert!(!min.wave);
        assert_eq!(min.coalescing, 1);
        assert_eq!(min.per_msg_ns, 0);
        assert!(matches!(min.graph, GraphKind::Rmat { scale: 3, .. }));
    }
}

//! Large-rank determinism smoke: the simulator runs thousands of ranks
//! on one OS thread pool, and identical seeds must reproduce the entire
//! virtual timeline — flight digest, event counts, final clock — bit for
//! bit. These are the scaled-down-per-rank versions of the acceptance
//! runs (tiny flight rings and coalescing keep memory and wall time
//! sane at 4096 ranks; determinism does not depend on either).

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

use dgp_am::{Machine, MachineConfig, SimPlan};

/// One ring-relay epoch at `ranks` ranks: every rank forwards a hop
/// around the ring, so every rank both sends and receives over modeled
/// links. Returns the reproducibility fingerprint.
fn ring_run(ranks: usize, seed: u64) -> (u64, u64, u64, u64) {
    let hops = Arc::new(AtomicU64::new(0));
    let h2 = hops.clone();
    let run = Machine::run_sim(
        MachineConfig::new(ranks).coalescing(1).flight(16),
        SimPlan::new(seed).latency(700).per_msg(5).jitter(1_500),
        move |ctx| {
            let hops = h2.clone();
            let mt = ctx.register(move |_ctx, _: u8| {
                hops.fetch_add(1, SeqCst);
            });
            ctx.epoch(|ctx| {
                mt.send(ctx, (ctx.rank() + 1) % ctx.num_ranks(), 0u8);
            });
        },
    )
    .expect("sim run");
    assert_eq!(hops.load(SeqCst), ranks as u64);
    (
        run.report.flight_digest,
        run.report.events,
        run.report.deliveries,
        run.report.virtual_time_ns,
    )
}

#[test]
fn ranks_1024_replay_bit_identically() {
    let a = ring_run(1024, 6);
    let b = ring_run(1024, 6);
    assert_eq!(a, b, "1024-rank timelines must be identical");
    let c = ring_run(1024, 7);
    assert_ne!(a.0, c.0, "a different seed explores a different timeline");
}

#[test]
fn ranks_4096_replay_bit_identically() {
    let a = ring_run(4096, 9);
    let b = ring_run(4096, 9);
    assert_eq!(a, b, "4096-rank timelines must be identical");
    assert!(a.2 >= 4096, "every rank's hop crossed a modeled link");
}

//! Reliability under modeled partitions: partitions form mid-epoch and
//! heal, and the unmodified seq/ack/retransmit/dedup stack must converge
//! to *exact* counter consistency — every logical message handled exactly
//! once, machine-wide sent == handled at quiescence, per-rank receive
//! counts exact — in both Hold (lossless outage) and Drop (lossy outage)
//! modes. Scenario-level tests additionally pin the algorithm results to
//! the unpartitioned baseline digest.

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

use dgp_am::{FaultPlan, Machine, MachineConfig, PartitionMode, SimAt, SimPlan, StatsSnapshot};
use dgp_sim::scenario::partition;
use dgp_sim::{run_scenario, ScenarioSpec, Workload};

const RANKS: usize = 4;
const EPOCHS: u64 = 3;
const PER_DEST: u64 = 5;

/// All-to-all chatter for [`EPOCHS`] epochs: every rank sends
/// [`PER_DEST`] messages to every other rank each epoch, bumping the
/// receiver's slot. Returns rank 0's final machine-wide stats snapshot.
fn all_to_all(
    cfg: MachineConfig,
    plan: SimPlan,
    received: Arc<Vec<AtomicU64>>,
) -> (StatsSnapshot, dgp_am::SimReport) {
    let run = Machine::run_sim(cfg, plan, move |ctx| {
        let received = received.clone();
        let mt = ctx.register(move |ctx, _: u64| {
            received[ctx.rank()].fetch_add(1, SeqCst);
        });
        for _ in 0..EPOCHS {
            ctx.epoch(|ctx| {
                for dest in 0..ctx.num_ranks() {
                    if dest != ctx.rank() {
                        for _ in 0..PER_DEST {
                            mt.send(ctx, dest, 1u64);
                        }
                    }
                }
            });
        }
        ctx.stats()
    })
    .expect("sim run");
    (run.results[0], run.report)
}

fn expected_per_rank() -> u64 {
    EPOCHS * PER_DEST * (RANKS as u64 - 1)
}

fn assert_exact(stats: &StatsSnapshot, received: &[AtomicU64], label: &str) {
    let expected = expected_per_rank();
    for (r, slot) in received.iter().enumerate() {
        assert_eq!(
            slot.load(SeqCst),
            expected,
            "{label}: rank {r} must receive exactly once per logical send"
        );
    }
    assert_eq!(
        stats.messages_sent,
        expected * RANKS as u64,
        "{label}: machine-wide sends"
    );
    assert_eq!(
        stats.messages_sent, stats.messages_handled,
        "{label}: quiescent machine must have handled exactly what was sent"
    );
    // `epochs` counts per-rank epoch completions.
    assert_eq!(
        stats.epochs,
        EPOCHS * RANKS as u64,
        "{label}: every rank terminated every epoch"
    );
}

/// Hold mode: the cut forms mid-epoch-1 and heals much later. Packets
/// park, flood in at the heal, and the epoch cannot terminate early —
/// counters stay exact without any reliability layer.
#[test]
fn hold_partition_mid_epoch_converges_exactly() {
    let received = Arc::new((0..RANKS).map(|_| AtomicU64::new(0)).collect::<Vec<_>>());
    // Onset at t=500ns: epoch-1 packets (latency 1µs) are already in
    // flight, so the cut catches them mid-epoch.
    let plan = SimPlan::new(41).latency(1_000).per_msg(10).partition(
        &[1],
        SimAt::Time(500),
        SimAt::Time(5_000_000),
        PartitionMode::Hold,
    );
    let (stats, report) = all_to_all(
        MachineConfig::new(RANKS).coalescing(2),
        plan,
        received.clone(),
    );
    assert_exact(&stats, &received, "hold");
    assert!(
        report.partition_held > 0,
        "the cut must have parked traffic"
    );
    assert_eq!(
        report.partition_drops, 0,
        "hold mode never destroys packets"
    );
    assert!(
        report.virtual_time_ns >= 5_000_000,
        "the run must outlast the heal (t={})",
        report.virtual_time_ns
    );
}

/// Drop mode: the cut destroys crossing packets; only ack-timeout
/// retransmission can recover them. After the heal the machine must
/// converge to the same exact counters — retransmits fired, receiver-side
/// dedup suppressed any duplicates, and not one logical message was lost
/// or double-handled.
#[test]
fn drop_partition_retransmits_and_dedups_to_exact_counters() {
    let received = Arc::new((0..RANKS).map(|_| AtomicU64::new(0)).collect::<Vec<_>>());
    let plan = SimPlan::new(43).latency(1_000).per_msg(10).partition(
        &[2],
        SimAt::Time(500),
        SimAt::Time(2_000_000),
        PartitionMode::Drop,
    );
    let (stats, report) = all_to_all(
        MachineConfig::new(RANKS)
            .coalescing(2)
            .faults(FaultPlan::new(7)),
        plan,
        received.clone(),
    );
    assert_exact(&stats, &received, "drop");
    assert!(
        report.partition_drops > 0,
        "the cut must have destroyed packets"
    );
    assert!(
        stats.retransmits > 0,
        "recovery must have come from retransmission"
    );
}

/// A partition spanning an epoch boundary: the cut is triggered by epoch
/// 1 completing and stays down across epoch 2's traffic. Exactness must
/// survive the boundary (termination detection cannot double-count the
/// recovered packets into the wrong epoch).
#[test]
fn drop_partition_across_epoch_boundary_stays_exact() {
    let received = Arc::new((0..RANKS).map(|_| AtomicU64::new(0)).collect::<Vec<_>>());
    let plan = SimPlan::new(47).latency(800).partition(
        &[1, 3],
        SimAt::Epoch(1),
        SimAt::Time(3_000_000),
        PartitionMode::Drop,
    );
    let (stats, report) = all_to_all(
        MachineConfig::new(RANKS)
            .coalescing(1)
            .faults(FaultPlan::new(11)),
        plan,
        received.clone(),
    );
    assert_exact(&stats, &received, "epoch-boundary drop");
    assert!(report.partition_drops > 0);
    assert!(stats.retransmits > 0);
}

/// Scenario level: SSSP results under a mid-run Hold partition are
/// bit-identical to the unpartitioned run, and the partitioned schedule
/// itself replays deterministically.
#[test]
fn sssp_result_is_partition_invariant_hold() {
    let base = ScenarioSpec::baseline(9);
    let clean = run_scenario(&base);
    assert!(clean.ok(), "{:?}", clean.error);

    let mut cut = base.clone();
    cut.partitions.push(partition(
        &[1],
        SimAt::Time(2_000),
        SimAt::Time(8_000_000),
        PartitionMode::Hold,
    ));
    let a = run_scenario(&cut);
    assert!(a.ok(), "{:?}", a.error);
    assert_eq!(
        a.result_digest, clean.result_digest,
        "a healed Hold partition must not change what SSSP computed"
    );
    assert!(a.report.partition_held > 0);

    let b = run_scenario(&cut);
    assert_eq!(a.report.flight_digest, b.report.flight_digest);
    assert_eq!(a.report.partition_held, b.report.partition_held);
}

/// Scenario level, Drop mode with the reliability layer: CC labels under
/// a lossy partition match the clean run exactly, with the mid-run
/// invariant checker active throughout.
#[test]
fn cc_result_survives_drop_partition_with_retransmission() {
    let mut base = ScenarioSpec::baseline(5);
    base.workload = Workload::Cc;
    // 6 blobs of 15 over 4 ranks: components straddle rank boundaries,
    // so CC traffic actually crosses the cut (k == ranks would place
    // each blob entirely on one rank and make the partition invisible).
    base.graph = dgp_sim::GraphKind::Blobs { k: 6, size: 15 };
    let clean = run_scenario(&base);
    assert!(clean.ok(), "{:?}", clean.error);

    let mut cut = base.clone();
    cut.faults = true;
    cut.partitions.push(partition(
        &[0],
        SimAt::Time(3_000),
        SimAt::Time(4_000_000),
        PartitionMode::Drop,
    ));
    let lossy = run_scenario(&cut);
    assert!(lossy.ok(), "{:?}", lossy.error);
    assert_eq!(
        lossy.result_digest, clean.result_digest,
        "retransmission must make the lossy run equivalent"
    );
    assert!(lossy.report.partition_drops > 0, "faults actually fired");
}
